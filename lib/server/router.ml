open Ekg_core
open Ekg_engine

type state = {
  registry : Registry.t;
  metrics : Metrics.t;
  started_at : float;
}

let make_state ?root () =
  let metrics = Metrics.create () in
  {
    registry = Registry.create ?root metrics;
    metrics;
    started_at = Unix.gettimeofday ();
  }

let registry st = st.registry
let metrics st = st.metrics

let json_response status j = Http.response status (Json.to_string j)

let error_response status msg =
  json_response status (Json.Obj [ "error", Json.str msg ])

(* --- endpoint handlers ----------------------------------------------------- *)

let health st =
  json_response 200
    (Json.Obj
       [
         "status", Json.str "ok";
         "uptime_seconds", Json.num (Unix.gettimeofday () -. st.started_at);
         "sessions", Json.int (Registry.count st.registry);
       ])

let metrics_doc st =
  json_response 200
    (Metrics.to_json st.metrics ~uptime_s:(Unix.gettimeofday () -. st.started_at))

let list_sessions st =
  json_response 200
    (Json.Obj
       [
         ( "sessions",
           Json.Arr (List.map Registry.session_json (Registry.list st.registry)) );
       ])

let create_session st (req : Http.request) =
  match Json.parse req.body with
  | Error e -> error_response 400 e
  | Ok body -> (
    match Registry.spec_of_json body with
    | Error e -> error_response 400 e
    | Ok (spec, name) -> (
      match Registry.add st.registry ?name spec with
      | Error e -> error_response 400 e
      | Ok session -> json_response 201 (Registry.session_json session)))

let templates (session : Registry.session) =
  let family tpls =
    Json.Obj
      (List.map
         (fun (name, tpl) -> name, Json.str (Template.skeleton tpl))
         tpls)
  in
  json_response 200
    (Json.Obj
       [
         "session", Json.str session.id;
         "deterministic", family session.pipeline.Pipeline.deterministic;
         "enhanced", family session.pipeline.Pipeline.enhanced;
       ])

let explanation_json (e : Pipeline.explanation) =
  Json.Obj
    [
      "fact", Json.str (Fact.to_string e.fact);
      "text", Json.str e.text;
      "deterministic_text", Json.str e.deterministic_text;
      "paths_used", Json.Arr (List.map Json.str e.paths_used);
      "proof_steps", Json.int (Proof.length e.proof);
    ]

let chase_error_response err =
  let status = if Chase.client_error err then 400 else 500 in
  error_response status ("reasoning: " ^ Chase.error_to_string err)

let explain st (session : Registry.session) (req : Http.request) =
  match Json.parse req.body with
  | Error e -> error_response 400 e
  | Ok body -> (
    match Json.mem_str "query" body with
    | None -> error_response 400 "missing \"query\" field (an atom, e.g. control(\"A\", \"B\"))"
    | Some query -> (
      (* parse the atom up front: a syntax error is the caller's fault
         and must not count as a failed reasoning run *)
      match Ekg_datalog.Parser.parse_atom query with
      | Error e -> error_response 400 ("query: " ^ e)
      | Ok atom -> (
        let strategy =
          match Json.mem_str "strategy" body with
          | Some "shortest" -> Ok `Shortest
          | Some "primary" | None -> Ok `Primary
          | Some other -> Error ("unknown strategy: " ^ other ^ " (primary|shortest)")
        in
        match strategy with
        | Error e -> error_response 400 e
        | Ok strategy -> (
          Registry.note_explain session;
          match Registry.materialize st.registry session with
          | Error err -> chase_error_response err
          | Ok result -> (
            match Pipeline.explain_atom ~strategy session.pipeline result atom with
            | Error e -> error_response 404 e
            | Ok explanations ->
              json_response 200
                (Json.Obj
                   [
                     "session", Json.str session.id;
                     "query", Json.str query;
                     "count", Json.int (List.length explanations);
                     ( "explanations",
                       Json.Arr (List.map explanation_json explanations) );
                   ]))))))

(* --- dispatch -------------------------------------------------------------- *)

let with_session st id k =
  match Registry.find st.registry id with
  | None -> error_response 404 ("no such session: " ^ id)
  | Some session -> k session

(* (route label, handler) — the label collapses path parameters so the
   metrics aggregate per endpoint, not per session. *)
let route st (req : Http.request) =
  match req.meth, req.path with
  | Http.GET, [ "health" ] -> "GET /health", health st
  | Http.GET, [ "metrics" ] -> "GET /metrics", metrics_doc st
  | Http.GET, [ "sessions" ] -> "GET /sessions", list_sessions st
  | Http.POST, [ "sessions" ] -> "POST /sessions", create_session st req
  | Http.POST, [ "sessions"; id; "explain" ] ->
    "POST /sessions/:id/explain", with_session st id (fun s -> explain st s req)
  | Http.GET, [ "sessions"; id; "templates" ] ->
    "GET /sessions/:id/templates", with_session st id templates
  | _, ([ "health" ] | [ "metrics" ] | [ "sessions" ] | [ "sessions"; _; "explain" ]
       | [ "sessions"; _; "templates" ]) ->
    ( Http.meth_to_string req.meth ^ " (known path)",
      error_response 405
        ("method " ^ Http.meth_to_string req.meth ^ " not allowed on " ^ req.target) )
  | _ -> "(unmatched)", error_response 404 ("no route for " ^ req.target)

let handle st req =
  let t0 = Unix.gettimeofday () in
  let label, resp =
    try route st req
    with exn ->
      ( "(handler-exception)",
        error_response 500 ("internal error: " ^ Printexc.to_string exn) )
  in
  Metrics.record st.metrics ~endpoint:label ~status:resp.Http.status
    ~seconds:(Unix.gettimeofday () -. t0);
  resp

let handle_parse_error st err =
  let status = Http.error_status err in
  Metrics.record st.metrics ~endpoint:"(parse-error)" ~status ~seconds:0.;
  error_response status (Http.error_message err)
