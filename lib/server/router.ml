open Ekg_core
open Ekg_engine

type state = {
  registry : Registry.t;
  metrics : Metrics.t;
  obs : Ekg_obs.Metrics.t;
  tracer : Ekg_obs.Trace.t;
  started_at : float;
}

let make_state ?root ?(chase_domains = 1) () =
  let metrics = Metrics.create () in
  let obs = Ekg_obs.Metrics.create () in
  let tracer =
    (* every finished span — pipeline stages, chase, whole requests —
       feeds the per-stage counters, so /metrics shows stage timings
       without anyone walking the trace ring *)
    Ekg_obs.Trace.create
      ~on_finish:(fun (span : Ekg_obs.Trace.span) ->
        let labels = [ "stage", span.name ] in
        Ekg_obs.Metrics.add obs
          ~help:"Seconds spent per pipeline/request stage" ~labels
          "ekg_pipeline_stage_seconds_total" span.dur_s;
        Ekg_obs.Metrics.incr obs
          ~help:"Spans finished per pipeline/request stage" ~labels
          "ekg_pipeline_stage_calls_total")
      ()
  in
  (* the mandatory series must be scrapeable before the first chase *)
  Ekg_obs.Metrics.declare_counter obs ~help:"Chase materializations completed"
    "ekg_chase_runs_total";
  Ekg_obs.Metrics.declare_counter obs ~help:"Fixpoint rounds executed"
    "ekg_chase_rounds_total";
  Ekg_obs.Metrics.declare_counter obs ~help:"Facts derived beyond the EDB"
    "ekg_chase_facts_derived_total";
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Join plans that deviated from textual body order"
    "ekg_chase_plan_reorders_total";
  Ekg_obs.Metrics.set obs ~help:"Domains used by the most recent chase"
    "ekg_chase_domains" (float_of_int chase_domains);
  {
    registry = Registry.create ?root ~obs ~chase_domains metrics;
    metrics;
    obs;
    tracer;
    started_at = Unix.gettimeofday ();
  }

let registry st = st.registry
let metrics st = st.metrics
let obs st = st.obs
let tracer st = st.tracer

let json_response status j = Http.response status (Json.to_string j)

let error_response status msg =
  json_response status (Json.Obj [ "error", Json.str msg ])

(* --- endpoint handlers ----------------------------------------------------- *)

let health st =
  json_response 200
    (Json.Obj
       [
         "status", Json.str "ok";
         "uptime_seconds", Json.num (Unix.gettimeofday () -. st.started_at);
         "sessions", Json.int (Registry.count st.registry);
       ])

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec at i =
    if i + nl > hl then false
    else String.sub haystack i nl = needle || at (i + 1)
  in
  nl = 0 || at 0

let wants_prometheus (req : Http.request) =
  match List.assoc_opt "format" req.query with
  | Some "prometheus" -> true
  | Some _ -> false
  | None -> (
    match Http.header req "accept" with
    | Some accept -> contains accept "text/plain"
    | None -> false)

let metrics_doc st (req : Http.request) =
  let uptime_s = Unix.gettimeofday () -. st.started_at in
  if wants_prometheus req then
    Http.response ~content_type:"text/plain; version=0.0.4" 200
      (Metrics.to_prometheus st.metrics ~uptime_s
      ^ Ekg_obs.Metrics.to_prometheus st.obs)
  else json_response 200 (Metrics.to_json st.metrics ~uptime_s)

let list_sessions st =
  json_response 200
    (Json.Obj
       [
         ( "sessions",
           Json.Arr (List.map Registry.session_json (Registry.list st.registry)) );
       ])

let create_session st (req : Http.request) =
  match Json.parse req.body with
  | Error e -> error_response 400 e
  | Ok body -> (
    match Registry.spec_of_json body with
    | Error e -> error_response 400 e
    | Ok (spec, name) -> (
      match Registry.add st.registry ?name spec with
      | Error e -> error_response 400 e
      | Ok session -> json_response 201 (Registry.session_json session)))

let templates (session : Registry.session) =
  let family tpls =
    Json.Obj
      (List.map
         (fun (name, tpl) -> name, Json.str (Template.skeleton tpl))
         tpls)
  in
  json_response 200
    (Json.Obj
       [
         "session", Json.str session.id;
         "deterministic", family session.pipeline.Pipeline.deterministic;
         "enhanced", family session.pipeline.Pipeline.enhanced;
       ])

let session_trace (session : Registry.session) =
  match Registry.last_trace session with
  | None ->
    error_response 404
      ("session " ^ session.id
     ^ " has no trace yet; POST /sessions/" ^ session.id
     ^ "/explain records one")
  | Some span -> Http.response 200 (Ekg_obs.Trace.span_to_json span)

let explanation_json (e : Pipeline.explanation) =
  Json.Obj
    [
      "fact", Json.str (Fact.to_string e.fact);
      "text", Json.str e.text;
      "deterministic_text", Json.str e.deterministic_text;
      "paths_used", Json.Arr (List.map Json.str e.paths_used);
      "proof_steps", Json.int (Proof.length e.proof);
    ]

let chase_error_response err =
  let status = if Chase.client_error err then 400 else 500 in
  error_response status ("reasoning: " ^ Chase.error_to_string err)

let explain st ~trace_id (session : Registry.session) (req : Http.request) =
  match Json.parse req.body with
  | Error e -> error_response 400 e
  | Ok body -> (
    match Json.mem_str "query" body with
    | None -> error_response 400 "missing \"query\" field (an atom, e.g. control(\"A\", \"B\"))"
    | Some query -> (
      (* parse the atom up front: a syntax error is the caller's fault
         and must not count as a failed reasoning run *)
      match Ekg_datalog.Parser.parse_atom query with
      | Error e -> error_response 400 ("query: " ^ e)
      | Ok atom -> (
        let strategy =
          match Json.mem_str "strategy" body with
          | Some "shortest" -> Ok `Shortest
          | Some "primary" | None -> Ok `Primary
          | Some other -> Error ("unknown strategy: " ^ other ^ " (primary|shortest)")
        in
        match strategy with
        | Error e -> error_response 400 e
        | Ok strategy ->
          Registry.note_explain session;
          let root = ref None in
          let resp =
            Ekg_obs.Trace.with_span st.tracer
              ~labels:
                [
                  "trace_id", trace_id;
                  "session", session.id;
                  "query", query;
                ]
              "explain-request"
            @@ fun span ->
            root := Some span;
            match
              Ekg_obs.Trace.with_span st.tracer ~parent:span "chase"
                (fun _ -> Registry.materialize st.registry session)
            with
            | Error err -> chase_error_response err
            | Ok result -> (
              match
                Pipeline.explain_atom ~strategy ~obs:st.tracer ~parent:span
                  session.pipeline result atom
              with
              | Error e -> error_response 404 e
              | Ok explanations ->
                json_response 200
                  (Json.Obj
                     [
                       "session", Json.str session.id;
                       "query", Json.str query;
                       "trace_id", Json.str trace_id;
                       "count", Json.int (List.length explanations);
                       ( "explanations",
                         Json.Arr (List.map explanation_json explanations) );
                     ]))
          in
          (* the span is finished (duration set) once with_span returns *)
          Option.iter (Registry.set_trace session) !root;
          resp)))

(* --- dispatch -------------------------------------------------------------- *)

let with_session st id k =
  match Registry.find st.registry id with
  | None -> error_response 404 ("no such session: " ^ id)
  | Some session -> k session

(* (route label, handler) — the label collapses path parameters so the
   metrics aggregate per endpoint, not per session. *)
let route st ~trace_id (req : Http.request) =
  match req.meth, req.path with
  | Http.GET, [ "health" ] -> "GET /health", health st
  | Http.GET, [ "metrics" ] -> "GET /metrics", metrics_doc st req
  | Http.GET, [ "sessions" ] -> "GET /sessions", list_sessions st
  | Http.POST, [ "sessions" ] -> "POST /sessions", create_session st req
  | Http.POST, [ "sessions"; id; "explain" ] ->
    ( "POST /sessions/:id/explain",
      with_session st id (fun s -> explain st ~trace_id s req) )
  | Http.GET, [ "sessions"; id; "templates" ] ->
    "GET /sessions/:id/templates", with_session st id templates
  | Http.GET, [ "sessions"; id; "trace" ] ->
    "GET /sessions/:id/trace", with_session st id session_trace
  | _, ([ "health" ] | [ "metrics" ] | [ "sessions" ] | [ "sessions"; _; "explain" ]
       | [ "sessions"; _; "templates" ] | [ "sessions"; _; "trace" ]) ->
    ( Http.meth_to_string req.meth ^ " (known path)",
      error_response 405
        ("method " ^ Http.meth_to_string req.meth ^ " not allowed on " ^ req.target) )
  | _ -> "(unmatched)", error_response 404 ("no route for " ^ req.target)

let handle st req =
  let t0 = Unix.gettimeofday () in
  let trace_id = Ekg_obs.Trace.next_trace_id st.tracer in
  let label, resp =
    try route st ~trace_id req
    with exn ->
      ( "(handler-exception)",
        error_response 500 ("internal error: " ^ Printexc.to_string exn) )
  in
  Metrics.record st.metrics ~endpoint:label ~status:resp.Http.status
    ~seconds:(Unix.gettimeofday () -. t0);
  { resp with
    Http.resp_headers = ("X-Ekg-Trace-Id", trace_id) :: resp.Http.resp_headers }

let handle_parse_error st err =
  let status = Http.error_status err in
  Metrics.record st.metrics ~endpoint:"(parse-error)" ~status ~seconds:0.;
  error_response status (Http.error_message err)
