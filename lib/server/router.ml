open Ekg_core
open Ekg_engine

(* one row of the live in-flight request table ([/v1/debug/inflight]) *)
type inflight = {
  if_trace : string;
  if_meth : string;
  if_target : string;
  if_started : float;
}

type state = {
  registry : Registry.t;
  metrics : Metrics.t;
  obs : Ekg_obs.Metrics.t;
  tracer : Ekg_obs.Trace.t;
  log : Ekg_obs.Log.t;
  runtime : Ekg_obs.Runtime.t;
  inflight : (int, inflight) Hashtbl.t;
  inflight_lock : Ekg_obs.Lock.t;
  inflight_seq : int Atomic.t;
  fault : Fault.t;
  default_deadline_ms : float;
  max_deadline_ms : float;
  started_at : float;
}

let shed_metric = "ekg_server_shed_total"
let deadline_metric = "ekg_request_deadline_exceeded_total"
let queue_depth_metric = "ekg_server_queue_depth"

let make_state ?root ?(chase_domains = 1) ?(fault = Fault.Off)
    ?(default_deadline_ms = 30_000.) ?(max_deadline_ms = 300_000.) ?store
    ?snapshot_mode ?max_hot_sessions ?log () =
  let metrics = Metrics.create () in
  let obs = Ekg_obs.Metrics.create () in
  (* no sink by default: request handling still feeds the slow-request
     ring (so /v1/debug/slowlog works out of the box) but no line is
     rendered until a sink — the --log-file flag — asks for one *)
  let log = match log with Some l -> l | None -> Ekg_obs.Log.create () in
  Option.iter (fun s -> Ekg_store.Store.set_obs s obs) store;
  let tracer =
    (* every finished span — pipeline stages, chase, whole requests —
       feeds the per-stage counters, so /metrics shows stage timings
       without anyone walking the trace ring *)
    Ekg_obs.Trace.create ~lock_obs:obs
      ~on_finish:(fun (span : Ekg_obs.Trace.span) ->
        let labels = [ "stage", span.name ] in
        Ekg_obs.Metrics.add obs
          ~help:"Seconds spent per pipeline/request stage" ~labels
          "ekg_pipeline_stage_seconds_total" span.dur_s;
        Ekg_obs.Metrics.incr obs
          ~help:"Spans finished per pipeline/request stage" ~labels
          "ekg_pipeline_stage_calls_total")
      ()
  in
  (* the mandatory series must be scrapeable before the first chase *)
  Ekg_obs.Metrics.declare_counter obs ~help:"Chase materializations completed"
    "ekg_chase_runs_total";
  Ekg_obs.Metrics.declare_counter obs ~help:"Fixpoint rounds executed"
    "ekg_chase_rounds_total";
  Ekg_obs.Metrics.declare_counter obs ~help:"Facts derived beyond the EDB"
    "ekg_chase_facts_derived_total";
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Join plans that deviated from textual body order"
    "ekg_chase_plan_reorders_total";
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Hash-join indexes built or extended during round planning"
    "ekg_chase_join_builds_total";
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Matches emitted by the join probe phase"
    "ekg_chase_join_probe_hits_total";
  Ekg_obs.Metrics.declare_histogram obs
    ~help:"Per-rule index build seconds per chase"
    "ekg_chase_join_build_seconds";
  Ekg_obs.Metrics.declare_histogram obs
    ~help:"Per-rule probe (match-phase) seconds per chase"
    "ekg_chase_join_probe_seconds";
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Seconds spent in chase materializations"
    "ekg_chase_seconds_total";
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Aggregate facts superseded by a later refinement"
    "ekg_chase_agg_superseded_total";
  Ekg_obs.Metrics.set obs ~help:"Domains used by the most recent chase"
    "ekg_chase_domains" (float_of_int chase_domains);
  (* the contention histograms of the process-wide instrumented locks
     likewise render (at zero) from the first scrape *)
  List.iter (Ekg_obs.Lock.declare obs) [ "registry"; "tracer"; "inflight" ];
  if Option.is_some store then Ekg_obs.Lock.declare obs "snapshotter";
  (* the live-update series likewise exist from the first scrape *)
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Chase rounds spent maintaining materializations incrementally"
    Registry.incremental_rounds_metric;
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Facts removed from materializations by retraction"
    Registry.retracted_facts_metric;
  (* the query lane's series likewise render (at zero) from the first
     scrape *)
  List.iter
    (fun (name, help) -> Ekg_obs.Metrics.declare_counter obs ~help name)
    [
      ( Registry.query_requests_metric,
        "Point queries served by the goal-directed lane" );
      ( Registry.query_rewrite_hits_metric,
        "Query shapes answered from a cached specialization" );
      ( Registry.query_rewrite_misses_metric,
        "Query shapes that paid for the magic-sets rewrite" );
      ( Registry.query_answer_hits_metric,
        "Point queries answered from the per-session answer cache" );
      ( Registry.query_answer_misses_metric,
        "Point queries that ran a scoped chase (answer cache miss)" );
      ( Registry.query_invalidations_metric,
        "Cached query answers dropped by fact updates" );
      ( Registry.query_seconds_metric,
        "Seconds spent answering point queries" );
    ];
  (* ditto for the robustness series: a scrape must see them at zero
     before the first shed / deadline trip *)
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Requests shed by admission control (503 overloaded)" shed_metric;
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Requests that exhausted their deadline (504)" deadline_metric;
  Ekg_obs.Metrics.set obs ~help:"Requests queued awaiting a worker"
    queue_depth_metric 0.;
  (* the persistence series likewise appear at zero from the first
     scrape when a store is configured *)
  if Option.is_some store then begin
    Ekg_obs.Metrics.declare_counter obs
      ~help:"Cumulative session snapshot bytes written"
      Ekg_store.Store.snapshot_bytes_metric;
    Ekg_obs.Metrics.declare_counter obs
      ~help:"Seconds spent encoding and durably writing session snapshots"
      Ekg_store.Store.snapshot_seconds_metric;
    Ekg_obs.Metrics.declare_counter obs
      ~help:"Seconds spent reading and decoding snapshots on warm restores"
      Ekg_store.Store.restore_seconds_metric;
    Ekg_obs.Metrics.declare_counter obs
      ~help:"Hot sessions demoted to disk by the --max-hot-sessions bound"
      Registry.evictions_metric;
    Ekg_obs.Metrics.declare_counter obs
      ~help:"Sessions re-registered from snapshots at startup"
      Registry.recovered_sessions_metric;
    Ekg_obs.Metrics.declare_gauge obs
      ~help:"Snapshot requests pending or in flight on the write-behind queue"
      Ekg_store.Snapshotter.queue_depth_metric;
    Ekg_obs.Metrics.declare_gauge obs
      ~help:"Seconds the current in-flight snapshot save has been running"
      Ekg_store.Snapshotter.stall_metric
  end;
  let registry =
    Registry.create ?root ~obs ~chase_domains ~fault ?store ?snapshot_mode
      ?max_hot_sessions metrics
  in
  let runtime = Ekg_obs.Runtime.create obs in
  (* snapshotter queue depth / stall gauges ride the sampler *)
  Option.iter
    (fun sn ->
      Ekg_obs.Runtime.register runtime "snapshotter"
        (Ekg_store.Snapshotter.runtime_samples sn))
    (Registry.snapshotter registry);
  (* one synchronous pass so every runtime gauge renders from boot,
     whether or not the background sampler is ever started *)
  ignore (Ekg_obs.Runtime.sample runtime);
  {
    registry;
    metrics;
    obs;
    tracer;
    log;
    runtime;
    inflight = Hashtbl.create 32;
    inflight_lock = Ekg_obs.Lock.create ~obs "inflight";
    inflight_seq = Atomic.make 0;
    fault;
    default_deadline_ms;
    max_deadline_ms;
    started_at = Unix.gettimeofday ();
  }

let registry st = st.registry
let metrics st = st.metrics
let obs st = st.obs
let tracer st = st.tracer
let log st = st.log
let runtime st = st.runtime
let fault st = st.fault

let json_response status j = Http.response status (Json.to_string j)

(* --- deadlines -------------------------------------------------------------- *)

let deadline_header = "x-ekg-deadline-ms"

(* The absolute instant (Clock.now_s scale) this request must answer
   by: header value when present (clamped to the server cap), server
   default otherwise. *)
let request_deadline st (req : Http.request) =
  match Http.header req deadline_header with
  | None -> Ok (Ekg_obs.Clock.now_s () +. (st.default_deadline_ms /. 1000.))
  | Some v -> (
    match float_of_string_opt (String.trim v) with
    | Some ms when ms > 0. ->
      let ms = Float.min ms st.max_deadline_ms in
      Ok (Ekg_obs.Clock.now_s () +. (ms /. 1000.))
    | _ ->
      Error
        ("invalid X-Ekg-Deadline-Ms header: " ^ v
       ^ " (expected a positive millisecond count)"))

(* --- endpoint handlers ----------------------------------------------------- *)

let health st =
  json_response 200
    (Json.Obj
       [
         "status", Json.str "ok";
         "uptime_seconds", Json.num (Unix.gettimeofday () -. st.started_at);
         "sessions", Json.int (Registry.count st.registry);
       ])

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec at i =
    if i + nl > hl then false
    else String.sub haystack i nl = needle || at (i + 1)
  in
  nl = 0 || at 0

let wants_prometheus (req : Http.request) =
  match List.assoc_opt "format" req.query with
  | Some "prometheus" -> true
  | Some _ -> false
  | None -> (
    match Http.header req "accept" with
    | Some accept -> contains accept "text/plain"
    | None -> false)

let metrics_doc st (req : Http.request) =
  let uptime_s = Unix.gettimeofday () -. st.started_at in
  if wants_prometheus req then
    Http.response ~content_type:"text/plain; version=0.0.4" 200
      (Metrics.to_prometheus st.metrics ~uptime_s
      ^ Ekg_obs.Metrics.to_prometheus st.obs)
  else json_response 200 (Metrics.to_json st.metrics ~uptime_s)

let delete_session st id =
  match Registry.remove st.registry id with
  | None -> Errors.response Errors.Session_not_found ("no such session: " ^ id)
  | Some session ->
    json_response 200
      (Json.Obj [ "id", Json.str session.id; "deleted", Json.bool true ])

let list_sessions st =
  json_response 200
    (Json.Obj
       [
         ( "sessions",
           Json.Arr (List.map Registry.session_json (Registry.list st.registry)) );
       ])

let create_session st (req : Http.request) =
  match Json.parse req.body with
  | Error e -> Errors.response Errors.Parse_error e
  | Ok body -> (
    match Registry.spec_of_json body with
    | Error e -> Errors.response Errors.Invalid_request e
    | Ok (spec, name) -> (
      match Registry.add st.registry ?name spec with
      | Error e -> Errors.response Errors.Invalid_program e
      | Ok session -> json_response 201 (Registry.session_json session)))

let templates (session : Registry.session) =
  let family tpls =
    Json.Obj
      (List.map
         (fun (name, tpl) -> name, Json.str (Template.skeleton tpl))
         tpls)
  in
  json_response 200
    (Json.Obj
       [
         "session", Json.str session.id;
         "deterministic", family session.pipeline.Pipeline.deterministic;
         "enhanced", family session.pipeline.Pipeline.enhanced;
       ])

let session_trace (session : Registry.session) =
  match Registry.last_trace session with
  | None ->
    Errors.response Errors.No_trace
      ("session " ^ session.id
     ^ " has no trace yet; POST /v1/sessions/" ^ session.id
     ^ "/explain records one")
  | Some span -> Http.response 200 (Ekg_obs.Trace.span_to_json span)

let explanation_json (e : Pipeline.explanation) =
  Json.Obj
    [
      "fact", Json.str (Fact.to_string e.fact);
      "text", Json.str e.text;
      "deterministic_text", Json.str e.deterministic_text;
      "paths_used", Json.Arr (List.map Json.str e.paths_used);
      "proof_steps", Json.int (Proof.length e.proof);
    ]

let chase_error_response st err =
  let code, message, detail = Errors.of_chase err in
  if code = Errors.Deadline_exceeded then
    Ekg_obs.Metrics.incr st.obs
      ~help:"Requests that exhausted their deadline (504)" deadline_metric;
  Errors.response ~detail code message

let strategy_of_param = function
  | Some "shortest" -> Ok `Shortest
  | Some "primary" | None -> Ok `Primary
  | Some other -> Error ("unknown strategy: " ^ other ^ " (primary|shortest)")

let strategy_of body = strategy_of_param (Json.mem_str "strategy" body)

(* --- the shared read-surface pagination envelope -----------------------------

   [GET /…/explain] and [GET|POST /…/query] page their result lists the
   same way: [limit] (default 50, capped at 500) and an opaque [cursor]
   from the previous page's [page.next_cursor].  The response carries
   [total] plus a [page] object; [next_cursor] is null on the last
   page.  Result lists are canonically ordered, so a cursor is stable
   under re-query as long as no fact update intervenes. *)

let page_default_limit = 50
let page_max_limit = 500

let paging ~limit ~cursor =
  let parsed_limit =
    match limit with
    | None -> Ok page_default_limit
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok (min n page_max_limit)
      | _ -> Error ("invalid limit: " ^ s ^ " (a positive integer)"))
  in
  match parsed_limit with
  | Error _ as e -> e
  | Ok lim -> (
    match cursor with
    | None -> Ok (lim, 0)
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok (lim, n)
      | _ -> Error ("invalid cursor: " ^ s)))

let page_slice ~limit ~offset items =
  List.filteri (fun i _ -> i >= offset && i < offset + limit) items

let page_json ~total ~limit ~offset ~served =
  let next = offset + served in
  Json.Obj
    [
      "limit", Json.int limit;
      "cursor", Json.str (string_of_int offset);
      ( "next_cursor",
        if served > 0 && next < total then Json.str (string_of_int next)
        else Json.Null );
    ]

let strategy_tag = function `Primary -> "primary" | `Shortest -> "shortest"

(* predicates whose change must evict a cached explanation result: the
   query's own predicate (new matches may appear) plus every predicate
   in the cached proofs (any of their facts may be withdrawn) *)
let explanation_preds (atom : Ekg_datalog.Atom.t)
    (explanations : Pipeline.explanation list) =
  let preds =
    List.concat_map
      (fun (e : Pipeline.explanation) ->
        e.Pipeline.fact.Fact.pred
        :: List.map
             (fun (f : Fact.t) -> f.Fact.pred)
             (Proof.facts_used e.Pipeline.proof))
      explanations
  in
  List.sort_uniq String.compare (atom.Ekg_datalog.Atom.pred :: preds)

let explain st ~trace_id ~deadline_s (session : Registry.session)
    (req : Http.request) =
  match Json.parse req.body with
  | Error e -> Errors.response Errors.Parse_error e
  | Ok body -> (
    match Json.mem_str "query" body with
    | None ->
      Errors.response Errors.Invalid_request
        "missing \"query\" field (an atom, e.g. control(\"A\", \"B\"))"
    | Some query -> (
      (* parse the atom up front: a syntax error is the caller's fault
         and must not count as a failed reasoning run *)
      match Ekg_datalog.Parser.parse_atom query with
      | Error e -> Errors.response Errors.Invalid_atom ("query: " ^ e)
      | Ok atom -> (
        match strategy_of body with
        | Error e -> Errors.response Errors.Invalid_request e
        | Ok strategy ->
          Registry.note_explain session;
          (* cache key: canonical atom text, so formatting differences
             between equal queries share an entry *)
          let key = Ekg_datalog.Atom.to_string atom in
          let tag = strategy_tag strategy in
          let answer ~cached ~degraded explanations =
            Ekg_obs.Log.Ctx.put "cache_hit" (Ekg_obs.Log.Bool cached);
            Ekg_obs.Log.Ctx.put "degraded" (Ekg_obs.Log.Bool degraded);
            json_response 200
              (Json.Obj
                 [
                   "session", Json.str session.id;
                   "query", Json.str query;
                   "trace_id", Json.str trace_id;
                   "cached", Json.bool cached;
                   "degraded", Json.bool degraded;
                   "count", Json.int (List.length explanations);
                   ( "explanations",
                     Json.Arr (List.map explanation_json explanations) );
                 ])
          in
          match Registry.cached_explanations session ~strategy:tag ~query:key with
          | Some explanations -> answer ~cached:true ~degraded:false explanations
          | None ->
            (* captured before computing: if a fact update commits while
               the explanation runs, the store below becomes a no-op
               instead of resurrecting an already-invalidated entry *)
            let generation = Registry.generation session in
            let budget = { Chase.unlimited with deadline_s = Some deadline_s } in
            let degrade () = Ekg_obs.Clock.now_s () >= deadline_s in
            let root = ref None in
            let resp =
              Ekg_obs.Trace.with_span st.tracer
                ~labels:
                  [
                    "trace_id", trace_id;
                    "session", session.id;
                    "query", query;
                  ]
                "explain-request"
              @@ fun span ->
              root := Some span;
              match
                Ekg_obs.Trace.with_span st.tracer ~parent:span "chase"
                  (fun chase_span ->
                    Registry.materialize ~budget ~tracer:st.tracer
                      ~parent:chase_span st.registry session)
              with
              | Error err -> chase_error_response st err
              | Ok result -> (
                match
                  Pipeline.explain_atom_budgeted ~strategy ~degrade ~obs:st.tracer
                    ~parent:span session.pipeline result atom
                with
                | Error e -> Errors.response Errors.No_explanation e
                | Ok (explanations, degraded) ->
                  (* degraded results carry skeletons, not prose — not
                     worth pinning in the cache *)
                  if not degraded then
                    Registry.cache_explanations session ~generation
                      ~strategy:tag ~query:key
                      ~preds:(explanation_preds atom explanations)
                      explanations;
                  answer ~cached:false ~degraded explanations)
            in
            (* the span is finished (duration set) once with_span returns *)
            Option.iter (Registry.set_trace session) !root;
            resp)))

(* [GET /v1/sessions/:id/explain]: the same answers as the POST form —
   same atom grammar, same cache — paged with the shared envelope *)
let explain_get st ~trace_id ~deadline_s (session : Registry.session)
    (req : Http.request) =
  let param k = List.assoc_opt k req.query in
  match param "query" with
  | None ->
    Errors.response Errors.Invalid_request
      "missing \"query\" parameter (an atom, e.g. control(\"A\", X))"
  | Some query -> (
    match Ekg_datalog.Parser.parse_atom query with
    | Error e -> Errors.response Errors.Invalid_atom ("query: " ^ e)
    | Ok atom -> (
      match strategy_of_param (param "strategy") with
      | Error e -> Errors.response Errors.Invalid_request e
      | Ok strategy -> (
        match paging ~limit:(param "limit") ~cursor:(param "cursor") with
        | Error e -> Errors.response Errors.Invalid_request e
        | Ok (limit, offset) ->
          Registry.note_explain session;
          let key = Ekg_datalog.Atom.to_string atom in
          let tag = strategy_tag strategy in
          let answer ~cached ~degraded explanations =
            Ekg_obs.Log.Ctx.put "cache_hit" (Ekg_obs.Log.Bool cached);
            Ekg_obs.Log.Ctx.put "degraded" (Ekg_obs.Log.Bool degraded);
            let total = List.length explanations in
            let served = page_slice ~limit ~offset explanations in
            json_response 200
              (Json.Obj
                 [
                   "session", Json.str session.id;
                   "query", Json.str query;
                   "trace_id", Json.str trace_id;
                   "cached", Json.bool cached;
                   "degraded", Json.bool degraded;
                   "total", Json.int total;
                   ( "page",
                     page_json ~total ~limit ~offset
                       ~served:(List.length served) );
                   ( "explanations",
                     Json.Arr (List.map explanation_json served) );
                 ])
          in
          match Registry.cached_explanations session ~strategy:tag ~query:key with
          | Some explanations -> answer ~cached:true ~degraded:false explanations
          | None ->
            let generation = Registry.generation session in
            let budget = { Chase.unlimited with deadline_s = Some deadline_s } in
            let degrade () = Ekg_obs.Clock.now_s () >= deadline_s in
            let root = ref None in
            let resp =
              Ekg_obs.Trace.with_span st.tracer
                ~labels:
                  [
                    "trace_id", trace_id;
                    "session", session.id;
                    "query", query;
                  ]
                "explain-request"
              @@ fun span ->
              root := Some span;
              match
                Ekg_obs.Trace.with_span st.tracer ~parent:span "chase"
                  (fun chase_span ->
                    Registry.materialize ~budget ~tracer:st.tracer
                      ~parent:chase_span st.registry session)
              with
              | Error err -> chase_error_response st err
              | Ok result -> (
                match
                  Pipeline.explain_atom_budgeted ~strategy ~degrade
                    ~obs:st.tracer ~parent:span session.pipeline result atom
                with
                | Error e -> Errors.response Errors.No_explanation e
                | Ok (explanations, degraded) ->
                  if not degraded then
                    Registry.cache_explanations session ~generation
                      ~strategy:tag ~query:key
                      ~preds:(explanation_preds atom explanations)
                      explanations;
                  answer ~cached:false ~degraded explanations)
            in
            Option.iter (Registry.set_trace session) !root;
            resp)))

(* --- the goal-directed query lane --------------------------------------------

   [GET|POST /v1/sessions/:id/query]: point queries answered by
   magic-sets specialization + a scoped chase over the session's EDB —
   never by (or waiting on) the served materialization.  The atom
   grammar is the explain endpoints' one; variables are the free
   positions ("control(\"A\", X)" asks who A controls). *)

let explain_mode_of = function
  | None | Some "none" -> Ok `None
  | Some "skeleton" -> Ok `Skeleton
  | Some "full" -> Ok `Full
  | Some other -> Error ("unknown explain mode: " ^ other ^ " (none|skeleton|full)")

let query_lane st ~trace_id ~deadline_s (session : Registry.session) ~query
    ~limit ~cursor ~explain_mode ~strategy () =
  match query with
  | None ->
    Errors.response Errors.Invalid_request
      "missing \"query\" (an atom, e.g. control(\"A\", X))"
  | Some qtext -> (
    match Ekg_datalog.Parser.parse_atom qtext with
    | Error e -> Errors.response Errors.Invalid_atom ("query: " ^ e)
    | Ok atom -> (
      match strategy_of_param strategy with
      | Error e -> Errors.response Errors.Invalid_request e
      | Ok strategy -> (
        match explain_mode_of explain_mode with
        | Error e -> Errors.response Errors.Invalid_request e
        | Ok emode -> (
          match paging ~limit ~cursor with
          | Error e -> Errors.response Errors.Invalid_request e
          | Ok (limit, offset) ->
            let budget = { Chase.unlimited with deadline_s = Some deadline_s } in
            let root = ref None in
            let resp =
              Ekg_obs.Trace.with_span st.tracer
                ~labels:
                  [
                    "trace_id", trace_id;
                    "session", session.id;
                    "query", qtext;
                  ]
                "query-request"
              @@ fun span ->
              root := Some span;
              match
                Registry.query ~budget ~tracer:st.tracer ~parent:span
                  st.registry session atom
              with
              | Error (`Unknown_pred e) ->
                Errors.response Errors.Invalid_atom ("query: " ^ e)
              | Error (`Chase err) -> chase_error_response st err
              | Ok outcome ->
                let result = outcome.Registry.qo_result in
                let answers = result.Pipeline.q_answers in
                let total = List.length answers in
                let served = page_slice ~limit ~offset answers in
                let answer_json (qa : Pipeline.query_answer) =
                  let bindings =
                    Json.Obj
                      (List.map
                         (fun (v, value) ->
                           ( v,
                             Json.str
                               (Ekg_datalog.Term.to_string
                                  (Ekg_datalog.Term.Cst value)) ))
                         (Ekg_datalog.Subst.to_list qa.Pipeline.qa_binding))
                  in
                  let base =
                    [
                      "fact", Json.str (Fact.to_string qa.Pipeline.qa_fact);
                      "bindings", bindings;
                    ]
                  in
                  match emode with
                  | `None -> Json.Obj base
                  | (`Skeleton | `Full) as m -> (
                    match
                      Pipeline.explain_answer ~strategy
                        ~degraded:(m = `Skeleton) ~obs:st.tracer ~parent:span
                        session.pipeline result qa
                    with
                    | Ok e ->
                      Json.Obj (base @ [ "explanation", explanation_json e ])
                    | Error msg ->
                      Json.Obj (base @ [ "explanation_error", Json.str msg ]))
                in
                json_response 200
                  (Json.Obj
                     ([
                        "session", Json.str session.id;
                        "query", Json.str qtext;
                        "trace_id", Json.str trace_id;
                        ( "mode",
                          Json.str
                            (match result.Pipeline.q_mode with
                            | `Magic -> "magic"
                            | `Full -> "full"
                            | `Edb -> "edb") );
                      ]
                     @ (match result.Pipeline.q_fallback with
                       | None -> []
                       | Some reason -> [ "fallback", Json.str reason ])
                     @ [
                         ( "rewrite_cached",
                           Json.bool outcome.Registry.qo_rewrite_cached );
                         "cached", Json.bool outcome.Registry.qo_answer_cached;
                         "rounds", Json.int result.Pipeline.q_rounds;
                         "derived_facts", Json.int result.Pipeline.q_derived;
                         "total", Json.int total;
                         ( "page",
                           page_json ~total ~limit ~offset
                             ~served:(List.length served) );
                         "answers", Json.Arr (List.map answer_json served);
                       ]))
            in
            Option.iter (Registry.set_trace session) !root;
            resp))))

let query_get st ~trace_id ~deadline_s session (req : Http.request) =
  let param k = List.assoc_opt k req.query in
  query_lane st ~trace_id ~deadline_s session ~query:(param "query")
    ~limit:(param "limit") ~cursor:(param "cursor")
    ~explain_mode:(param "explain") ~strategy:(param "strategy") ()

let query_post st ~trace_id ~deadline_s session (req : Http.request) =
  match Json.parse req.body with
  | Error e -> Errors.response Errors.Parse_error e
  | Ok body ->
    let str k = Json.mem_str k body in
    let int_or_str k =
      match Json.member k body with
      | Some (Json.Num n) when Float.is_integer n ->
        Some (string_of_int (int_of_float n))
      | _ -> str k
    in
    query_lane st ~trace_id ~deadline_s session ~query:(str "query")
      ~limit:(int_or_str "limit") ~cursor:(str "cursor")
      ~explain_mode:(str "explain") ~strategy:(str "strategy") ()

(* --- live fact updates ------------------------------------------------------ *)

(* Body: {"facts": ["own(\"A\", \"B\", 0.5)", ...]} — ground atoms in
   program syntax.  Every atom must parse before anything is applied. *)
let facts_of_body body =
  match Json.member "facts" body with
  | None -> Error "missing \"facts\" array"
  | Some (Json.Arr []) -> Error "empty \"facts\" array"
  | Some (Json.Arr items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Str text :: rest -> (
        match Ekg_datalog.Parser.parse_atom text with
        | Ok atom -> go (atom :: acc) rest
        | Error e -> Error ("fact " ^ text ^ ": " ^ e))
      | _ -> Error "every fact must be an atom string"
    in
    go [] items
  | Some _ -> Error "\"facts\" must be an array of atom strings"

let update_facts st ~deadline_s op (session : Registry.session)
    (req : Http.request) =
  match Json.parse req.body with
  | Error e -> Errors.response Errors.Parse_error e
  | Ok body -> (
    match facts_of_body body with
    | Error e -> Errors.response Errors.Invalid_request e
    | Ok atoms -> (
      let budget = { Chase.unlimited with deadline_s = Some deadline_s } in
      match Registry.update_facts ~budget st.registry session op atoms with
      | Error err -> chase_error_response st err
      | Ok upd ->
        json_response 200
          (Json.Obj
             [
               "session", Json.str session.id;
               ( "op",
                 Json.str (match op with `Add -> "add" | `Retract -> "retract") );
               "incremental", Json.bool upd.Chase.upd_incremental;
               "rounds", Json.int upd.Chase.upd_rounds;
               "added", Json.int upd.Chase.upd_added;
               "retracted", Json.int upd.Chase.upd_retracted;
               "rederived", Json.int upd.Chase.upd_rederived;
               ( "changed_predicates",
                 Json.Arr (List.map Json.str upd.Chase.upd_changed_preds) );
             ])))

(* --- content identity -------------------------------------------------------

   [GET /v1/sessions/:id/fingerprint]: the canonical content identity
   of the session's materialization, as an MD5 hex digest of
   [Database.fingerprint] (which renders and sorts every active fact,
   so equal digests mean equal instances regardless of how the state
   was reached — cold chase, incremental maintenance, or snapshot
   restore).  The scale replay driver's identity gate compares this
   against a local cold chase on the final EDB; the full fact dump
   would be megabytes at registry scale, the digest is 32 bytes. *)
let session_fingerprint st ~deadline_s (session : Registry.session) =
  let budget = { Chase.unlimited with deadline_s = Some deadline_s } in
  match Registry.materialize ~budget st.registry session with
  | Error err -> chase_error_response st err
  | Ok result ->
    let canonical = Database.fingerprint result.Chase.db in
    json_response 200
      (Json.Obj
         [
           "session", Json.str session.id;
           "algo", Json.str "md5";
           "fingerprint", Json.str (Digest.to_hex (Digest.string canonical));
           "facts", Json.int (Database.active_size result.Chase.db);
           "derived", Json.int result.Chase.derived_count;
           "rounds", Json.int result.Chase.rounds;
         ])

(* --- batch explain ---------------------------------------------------------- *)

let batch_item_error ?query code message =
  Json.Obj
    ((match query with None -> [] | Some q -> [ "query", Json.str q ])
    @ [
        "status", Json.str "error";
        ( "error",
          Json.Obj
            [
              "code", Json.str (Errors.id code);
              "message", Json.str message;
              "retryable", Json.bool (Errors.retryable code);
            ] );
      ])

(* One item is a bare query string or {"query", "strategy"?};
   [default_strategy] is the request-level strategy. *)
let batch_item_spec ~default_strategy = function
  | Json.Str q -> Ok (q, default_strategy)
  | Json.Obj _ as o -> (
    match Json.mem_str "query" o with
    | None -> Error "item is missing its \"query\" field"
    | Some q -> (
      match Json.mem_str "strategy" o with
      | None -> Ok (q, default_strategy)
      | Some _ -> Result.map (fun s -> q, s) (strategy_of o)))
  | _ -> Error "each item must be a query string or an object with \"query\""

let explain_batch st ~trace_id ~deadline_s (session : Registry.session)
    (req : Http.request) =
  match Json.parse req.body with
  | Error e -> Errors.response Errors.Parse_error e
  | Ok body -> (
    let items =
      match body with
      | Json.Arr items -> Ok (items, `Primary)
      | Json.Obj _ -> (
        match Json.member "queries" body with
        | Some (Json.Arr items) ->
          Result.map (fun s -> items, s) (strategy_of body)
        | Some _ -> Error "\"queries\" must be an array"
        | None -> Error "missing \"queries\" array")
      | _ -> Error "body must be an array of queries or {\"queries\": [...]}"
    in
    match items with
    | Error e -> Errors.response Errors.Invalid_request e
    | Ok ([], _) -> Errors.response Errors.Invalid_request "empty batch"
    | Ok (items, default_strategy) ->
      Registry.note_explain session;
      let budget = { Chase.unlimited with deadline_s = Some deadline_s } in
      let degrade () = Ekg_obs.Clock.now_s () >= deadline_s in
      let root = ref None in
      let resp =
        Ekg_obs.Trace.with_span st.tracer
          ~labels:
            [
              "trace_id", trace_id;
              "session", session.id;
              "items", string_of_int (List.length items);
            ]
          "explain-batch-request"
        @@ fun span ->
        root := Some span;
        (* one chase shared by every item — the whole point of batching *)
        match
          Ekg_obs.Trace.with_span st.tracer ~parent:span "chase"
            (fun chase_span ->
              Registry.materialize ~budget ~tracer:st.tracer
                ~parent:chase_span st.registry session)
        with
        | Error err -> chase_error_response st err
        | Ok result ->
          let explain_item item =
            match batch_item_spec ~default_strategy item with
            | Error e -> batch_item_error Errors.Invalid_request e
            | Ok (query, strategy) -> (
              if degrade () then
                (* past the deadline: later items are not even attempted *)
                batch_item_error ~query Errors.Deadline_exceeded
                  "request deadline exhausted before this item"
              else
                match Ekg_datalog.Parser.parse_atom query with
                | Error e ->
                  batch_item_error ~query Errors.Invalid_atom ("query: " ^ e)
                | Ok atom -> (
                  match
                    Pipeline.explain_atom_budgeted ~strategy ~degrade
                      ~obs:st.tracer ~parent:span session.pipeline result atom
                  with
                  | Error e -> batch_item_error ~query Errors.No_explanation e
                  | Ok (explanations, degraded) ->
                    Json.Obj
                      [
                        "query", Json.str query;
                        "status", Json.str "ok";
                        "degraded", Json.bool degraded;
                        "count", Json.int (List.length explanations);
                        ( "explanations",
                          Json.Arr (List.map explanation_json explanations) );
                      ]))
          in
          let results = List.map explain_item items in
          let ok, failed =
            List.partition
              (fun item -> Json.mem_str "status" item = Some "ok")
              results
          in
          json_response 200
            (Json.Obj
               [
                 "session", Json.str session.id;
                 "trace_id", Json.str trace_id;
                 "count", Json.int (List.length results);
                 "ok", Json.int (List.length ok);
                 "failed", Json.int (List.length failed);
                 "items", Json.Arr results;
               ])
      in
      Option.iter (Registry.set_trace session) !root;
      resp)

(* --- live debug introspection ------------------------------------------------

   [GET /v1/debug/*]: operational state rendered live, for humans and
   scripts mid-incident — no scrape pipeline required. *)

let log_value_json : Ekg_obs.Log.value -> Json.t = function
  | Ekg_obs.Log.Bool b -> Json.bool b
  | Ekg_obs.Log.Int i -> Json.int i
  | Ekg_obs.Log.Float f -> Json.num f
  | Ekg_obs.Log.Str s -> Json.str s

let debug_runtime st =
  let samples = Ekg_obs.Runtime.sample st.runtime in
  json_response 200
    (Json.Obj
       [
         "uptime_seconds", Json.num (Unix.gettimeofday () -. st.started_at);
         ( "sampler",
           Json.Obj
             [
               "period_s", Json.num (Ekg_obs.Runtime.period_s st.runtime);
               "running", Json.bool (Ekg_obs.Runtime.running st.runtime);
             ] );
         ( "gauges",
           Json.Arr
             (List.map
                (fun (s : Ekg_obs.Runtime.sample) ->
                  Json.Obj
                    ([ "name", Json.str s.s_name ]
                    @ (if s.s_labels = [] then []
                       else
                         [
                           ( "labels",
                             Json.Obj
                               (List.map
                                  (fun (k, v) -> k, Json.str v)
                                  s.s_labels) );
                         ])
                    @ [ "value", Json.num s.s_value ]))
                samples) );
         ( "log",
           Json.Obj
             [
               ( "level",
                 Json.str (Ekg_obs.Log.level_to_string (Ekg_obs.Log.level st.log))
               );
               ( "slowlog_threshold_ms",
                 Json.num (Ekg_obs.Log.slow_threshold_ms st.log) );
               "events_emitted", Json.int (Ekg_obs.Log.emitted st.log);
             ] );
       ])

let debug_sessions st =
  let sessions = Registry.list st.registry in
  json_response 200
    (Json.Obj
       [
         "count", Json.int (List.length sessions);
         "hot", Json.int (Registry.hot_count st.registry);
         "sessions", Json.Arr (List.map Registry.session_json sessions);
       ])

let debug_inflight st =
  let now = Unix.gettimeofday () in
  let entries =
    Ekg_obs.Lock.with_lock st.inflight_lock (fun () ->
        Hashtbl.fold (fun _ e acc -> e :: acc) st.inflight [])
    |> List.sort (fun a b -> Float.compare a.if_started b.if_started)
  in
  json_response 200
    (Json.Obj
       [
         "count", Json.int (List.length entries);
         ( "inflight",
           Json.Arr
             (List.map
                (fun e ->
                  Json.Obj
                    [
                      "trace_id", Json.str e.if_trace;
                      "method", Json.str e.if_meth;
                      "target", Json.str e.if_target;
                      ( "elapsed_ms",
                        Json.num (Float.max 0. ((now -. e.if_started) *. 1000.))
                      );
                    ])
                entries) );
       ])

let debug_slowlog st =
  let entries = Ekg_obs.Log.slow_entries st.log in
  json_response 200
    (Json.Obj
       [
         "threshold_ms", Json.num (Ekg_obs.Log.slow_threshold_ms st.log);
         "count", Json.int (List.length entries);
         ( "slow",
           Json.Arr
             (List.map
                (fun (e : Ekg_obs.Log.entry) ->
                  Json.Obj
                    ([
                       "ts", Json.num e.e_ts;
                       "event", Json.str e.e_event;
                       "duration_ms", Json.num e.e_duration_ms;
                     ]
                    @ List.map (fun (k, v) -> k, log_value_json v) e.e_fields))
                entries) );
       ])

(* --- dispatch -------------------------------------------------------------- *)

let with_session st id k =
  match Registry.find st.registry id with
  | None -> Errors.response Errors.Session_not_found ("no such session: " ^ id)
  | Some session ->
    Ekg_obs.Log.Ctx.put "session" (Ekg_obs.Log.Str id);
    k session

(* (route label, handler) — the label collapses path parameters so the
   metrics aggregate per endpoint, not per session. *)
let route_v1 st ~trace_id ~deadline (req : Http.request) rest =
  let with_deadline k =
    match deadline with
    | Error e -> Errors.response Errors.Invalid_request e
    | Ok deadline_s -> k deadline_s
  in
  match req.meth, rest with
  | Http.GET, [ "health" ] -> "GET /v1/health", health st
  | Http.GET, [ "metrics" ] -> "GET /v1/metrics", metrics_doc st req
  | Http.GET, [ "sessions" ] -> "GET /v1/sessions", list_sessions st
  | Http.POST, [ "sessions" ] -> "POST /v1/sessions", create_session st req
  | Http.DELETE, [ "sessions"; id ] ->
    "DELETE /v1/sessions/:id", delete_session st id
  | Http.POST, [ "sessions"; id; "explain" ] ->
    ( "POST /v1/sessions/:id/explain",
      with_deadline (fun deadline_s ->
          with_session st id (fun s -> explain st ~trace_id ~deadline_s s req)) )
  | Http.GET, [ "sessions"; id; "explain" ] ->
    ( "GET /v1/sessions/:id/explain",
      with_deadline (fun deadline_s ->
          with_session st id (fun s ->
              explain_get st ~trace_id ~deadline_s s req)) )
  | Http.GET, [ "sessions"; id; "query" ] ->
    ( "GET /v1/sessions/:id/query",
      with_deadline (fun deadline_s ->
          with_session st id (fun s -> query_get st ~trace_id ~deadline_s s req))
    )
  | Http.POST, [ "sessions"; id; "query" ] ->
    ( "POST /v1/sessions/:id/query",
      with_deadline (fun deadline_s ->
          with_session st id (fun s -> query_post st ~trace_id ~deadline_s s req))
    )
  | Http.POST, [ "sessions"; id; "explain:batch" ] ->
    ( "POST /v1/sessions/:id/explain:batch",
      with_deadline (fun deadline_s ->
          with_session st id (fun s ->
              explain_batch st ~trace_id ~deadline_s s req)) )
  | Http.POST, [ "sessions"; id; "facts" ] ->
    ( "POST /v1/sessions/:id/facts",
      with_deadline (fun deadline_s ->
          with_session st id (fun s -> update_facts st ~deadline_s `Add s req)) )
  | Http.DELETE, [ "sessions"; id; "facts" ] ->
    ( "DELETE /v1/sessions/:id/facts",
      with_deadline (fun deadline_s ->
          with_session st id (fun s ->
              update_facts st ~deadline_s `Retract s req)) )
  | Http.GET, [ "sessions"; id; "fingerprint" ] ->
    ( "GET /v1/sessions/:id/fingerprint",
      with_deadline (fun deadline_s ->
          with_session st id (fun s -> session_fingerprint st ~deadline_s s)) )
  | Http.GET, [ "sessions"; id; "templates" ] ->
    "GET /v1/sessions/:id/templates", with_session st id templates
  | Http.GET, [ "sessions"; id; "trace" ] ->
    "GET /v1/sessions/:id/trace", with_session st id session_trace
  | Http.GET, [ "debug"; "runtime" ] -> "GET /v1/debug/runtime", debug_runtime st
  | Http.GET, [ "debug"; "sessions" ] ->
    "GET /v1/debug/sessions", debug_sessions st
  | Http.GET, [ "debug"; "inflight" ] ->
    "GET /v1/debug/inflight", debug_inflight st
  | Http.GET, [ "debug"; "slowlog" ] -> "GET /v1/debug/slowlog", debug_slowlog st
  | _, ([ "health" ] | [ "metrics" ] | [ "sessions" ]
       | [ "debug"; ("runtime" | "sessions" | "inflight" | "slowlog") ]
       | [ "sessions"; _;
           ("explain" | "explain:batch" | "query" | "templates" | "trace"
           | "facts" | "fingerprint") ]) ->
    ( Http.meth_to_string req.meth ^ " (known path)",
      Errors.response Errors.Method_not_allowed
        ("method " ^ Http.meth_to_string req.meth ^ " not allowed on "
       ^ req.target) )
  | _ ->
    ( "(unmatched)",
      Errors.response Errors.Not_found ("no route for " ^ req.target) )

let route st ~trace_id ~deadline (req : Http.request) =
  match req.path with
  | "v1" :: rest -> route_v1 st ~trace_id ~deadline req rest
  | [ "health" ] | [ "metrics" ] | "sessions" :: _ ->
    (* pre-/v1 paths: permanent redirect, flagged deprecated *)
    let location = "/v1" ^ req.target in
    ( "(legacy-redirect)",
      Errors.response
        ~detail:[ "location", Json.str location ]
        ~headers:[ "Location", location; "Deprecation", "true" ]
        Errors.Moved_permanently
        ("this endpoint moved to " ^ location) )
  | _ ->
    ( "(unmatched)",
      Errors.response Errors.Not_found ("no route for " ^ req.target) )

(* The delay fault slows session traffic only: health and metrics must
   stay responsive so probes observe the overload instead of joining it. *)
let fault_delay st (req : Http.request) =
  match st.fault with
  | Fault.Delay d -> (
    match req.path with
    | "sessions" :: _ | "v1" :: "sessions" :: _ -> Unix.sleepf d
    | _ -> ())
  | _ -> ()

(* --- the wide event ----------------------------------------------------------

   One canonical JSONL record per request, carrying everything known
   about it: identity (trace id, method, target, endpoint), outcome
   (status, error code), where the time went (admission wait, total
   duration), what the reasoning tier did (chase source and cost,
   cache hits, snapshot scheduling — contributed through [Log.Ctx] by
   the registry and handlers), and what the request cost the runtime
   (GC deltas).  Every field below is present in every event, so log
   consumers can rely on the schema; Ctx contributions override the
   defaults. *)

let wide_defaults =
  [
    "session", Ekg_obs.Log.Str "";
    "cache_hit", Ekg_obs.Log.Bool false;
    "degraded", Ekg_obs.Log.Bool false;
    "chase_source", Ekg_obs.Log.Str "none";
    "chase_rounds", Ekg_obs.Log.Int 0;
    "chase_facts", Ekg_obs.Log.Int 0;
    "plan_reorders", Ekg_obs.Log.Int 0;
    "join_strategy", Ekg_obs.Log.Str "none";
    "snapshot_scheduled", Ekg_obs.Log.Bool false;
    "shed", Ekg_obs.Log.Bool false;
  ]

(* stable wire code out of the error envelope, e.g. "deadline_exceeded" *)
let error_code_of_body status body =
  if status < 400 then None
  else
    match Json.parse body with
    | Ok (Json.Obj _ as o) -> (
      match Json.member "error" o with
      | Some e -> Json.mem_str "code" e
      | None -> None)
    | _ -> None

let emit_wide_event st ~trace_id ~meth ~target ~label ~status ~body
    ~queue_wait_s ~dur_s ~(gc0 : Gc.stat) ~(gc1 : Gc.stat) ctx_fields =
  let open Ekg_obs.Log in
  let merged =
    List.fold_left
      (fun acc (k, v) ->
        if List.mem_assoc k acc then
          List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) acc
        else acc @ [ (k, v) ])
      wide_defaults ctx_fields
  in
  let fields =
    [
      "trace_id", Str trace_id;
      "method", Str meth;
      "target", Str target;
      "endpoint", Str label;
      "status", Int status;
      ( "error_code",
        Str (Option.value (error_code_of_body status body) ~default:"") );
      "queue_wait_ms", Float (queue_wait_s *. 1000.);
    ]
    @ merged
    @ [
        "gc_minor_collections", Int (gc1.minor_collections - gc0.minor_collections);
        "gc_major_collections", Int (gc1.major_collections - gc0.major_collections);
        "gc_promoted_words", Float (gc1.promoted_words -. gc0.promoted_words);
        "gc_minor_words", Float (gc1.minor_words -. gc0.minor_words);
      ]
  in
  let level = if status >= 500 then Error else if status >= 400 then Warn else Info in
  event st.log ~duration_ms:(dur_s *. 1000.) level "request" fields

let handle ?(queue_wait_s = 0.) st req =
  let t0 = Unix.gettimeofday () in
  let trace_id = Ekg_obs.Trace.next_trace_id st.tracer in
  let meth = Http.meth_to_string req.Http.meth in
  (* the deadline clock starts when handling does — before any injected
     delay — so a slow handler consumes the request's budget *)
  let deadline = request_deadline st req in
  let if_id = Atomic.fetch_and_add st.inflight_seq 1 in
  Ekg_obs.Lock.with_lock st.inflight_lock (fun () ->
      Hashtbl.replace st.inflight if_id
        {
          if_trace = trace_id;
          if_meth = meth;
          if_target = req.Http.target;
          if_started = t0;
        });
  let gc0 = Gc.quick_stat () in
  let (label, resp), ctx_fields =
    Ekg_obs.Log.Ctx.collect (fun () ->
        fault_delay st req;
        try route st ~trace_id ~deadline req
        with exn ->
          ( "(handler-exception)",
            Errors.response Errors.Internal_error
              ("internal error: " ^ Printexc.to_string exn) ))
  in
  let gc1 = Gc.quick_stat () in
  Ekg_obs.Lock.with_lock st.inflight_lock (fun () ->
      Hashtbl.remove st.inflight if_id);
  let dur_s = Unix.gettimeofday () -. t0 in
  Metrics.record st.metrics ~endpoint:label ~status:resp.Http.status
    ~seconds:dur_s;
  emit_wide_event st ~trace_id ~meth ~target:req.Http.target ~label
    ~status:resp.Http.status ~body:resp.Http.resp_body ~queue_wait_s ~dur_s ~gc0
    ~gc1 ctx_fields;
  { resp with
    Http.resp_headers = ("X-Ekg-Trace-Id", trace_id) :: resp.Http.resp_headers }

let handle_overload st (req : Http.request) =
  Ekg_obs.Metrics.incr st.obs
    ~help:"Requests shed by admission control (503 overloaded)" shed_metric;
  let resp =
    Errors.response
      ~headers:[ "Retry-After", "1" ]
      Errors.Overloaded
      ("admission queue past high-water mark; retry " ^ req.target ^ " later")
  in
  Metrics.record st.metrics ~endpoint:"(shed)" ~status:resp.Http.status
    ~seconds:0.;
  (* shed requests never reach [handle], so they emit their wide event
     here — "every request emits exactly one" includes refusals *)
  let gc = Gc.quick_stat () in
  let trace_id = Ekg_obs.Trace.next_trace_id st.tracer in
  emit_wide_event st ~trace_id
    ~meth:(Http.meth_to_string req.Http.meth)
    ~target:req.Http.target ~label:"(shed)" ~status:resp.Http.status
    ~body:resp.Http.resp_body ~queue_wait_s:0. ~dur_s:0. ~gc0:gc ~gc1:gc
    [ ("shed", Ekg_obs.Log.Bool true) ];
  resp

let set_queue_depth st depth =
  Ekg_obs.Metrics.set st.obs ~help:"Requests queued awaiting a worker"
    queue_depth_metric (float_of_int depth)

let handle_parse_error st err =
  let code =
    match err with
    | Http.Bad_request _ | Http.Closed -> Errors.Parse_error
    | Http.Length_required -> Errors.Length_required
    | Http.Payload_too_large _ -> Errors.Payload_too_large
    | Http.Headers_too_large _ -> Errors.Headers_too_large
  in
  Metrics.record st.metrics ~endpoint:"(parse-error)" ~status:(Errors.status code)
    ~seconds:0.;
  Errors.response code (Http.error_message err)
