(** Route table of the explanation service.

    {v
    GET  /health                  liveness + uptime
    GET  /metrics                 counters and latency quantiles (JSON), or
                                  Prometheus text exposition when the request
                                  sends [Accept: text/plain] or
                                  [?format=prometheus]
    POST /sessions                load a program/glossary/EDB triple
    GET  /sessions                list sessions
    POST /sessions/:id/explain    explain the facts matching an atom query
    GET  /sessions/:id/templates  both template families of a session
    GET  /sessions/:id/trace      the span tree of the session's last explain
    v}

    Every JSON error is [{"error": …}].  Handler exceptions are caught
    and mapped to 500 so a worker domain never dies on a request.

    Every request is assigned a process-unique trace id, echoed back in
    an [X-Ekg-Trace-Id] response header; explain requests additionally
    record a span tree (request → chase → explain stages) under that id,
    retrievable via [GET /sessions/:id/trace].  Finished spans feed the
    [ekg_pipeline_stage_*] series; chase materializations feed
    [ekg_chase_*]. *)

type state

val make_state : ?root:string -> ?chase_domains:int -> unit -> state
(** Fresh registry + metrics + observability registry + tracer; [root]
    anchors [program_path] / [facts_dir] session specs.
    [chase_domains] (default [1]) is the match-phase fan-out of every
    chase materialization — orthogonal to the HTTP worker-domain count.
    The mandatory chase counters are pre-declared so Prometheus scrapes
    see them before the first materialization. *)

val registry : state -> Registry.t
val metrics : state -> Metrics.t

val obs : state -> Ekg_obs.Metrics.t
(** The chase/pipeline-stage series appended to the Prometheus
    exposition. *)

val tracer : state -> Ekg_obs.Trace.t
(** The request tracer (ring buffer of recent explain traces). *)

val handle : state -> Http.request -> Http.response
(** Dispatch one request, recording latency and status against the
    route label (path parameters collapsed to [:id]) and stamping the
    [X-Ekg-Trace-Id] header. *)

val handle_parse_error : state -> Http.error -> Http.response
(** The response for a request that never parsed; also recorded in the
    metrics under ["(parse-error)"]. *)
