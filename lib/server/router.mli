(** Route table of the explanation service — API v1.

    {v
    GET  /v1/health                      liveness + uptime
    GET  /v1/metrics                     counters and latency quantiles (JSON),
                                         or Prometheus text exposition when the
                                         request sends [Accept: text/plain] or
                                         [?format=prometheus]
    POST /v1/sessions                    load a program/glossary/EDB triple
    GET  /v1/sessions                    list sessions
    POST /v1/sessions/:id/explain        explain the facts matching an atom query
    POST /v1/sessions/:id/explain:batch  explain many queries over one chase
    GET  /v1/sessions/:id/templates      both template families of a session
    GET  /v1/sessions/:id/trace          span tree of the session's last explain
    GET  /v1/debug/runtime               live runtime gauges (GC, sampler sources)
    GET  /v1/debug/sessions              session table: tier, generation, LRU clock
    GET  /v1/debug/inflight              in-flight request table with elapsed time
    GET  /v1/debug/slowlog               the slow-request ring
    v}

    The pre-/v1 paths ([/health], [/metrics], [/sessions…]) answer
    [301 Moved Permanently] with a [Location] header pointing at the
    [/v1] equivalent and a [Deprecation: true] header.

    {2 Error envelope}

    Every non-2xx body is
    [{"error": {"code", "message", "retryable", "detail"?}}] — see
    {!Errors} for the code set and its HTTP/retryability mapping.
    Handler exceptions are caught and mapped to [internal_error]/500 so
    a worker domain never dies on a request.

    {2 Deadlines}

    Explain-family requests honour an [X-Ekg-Deadline-Ms] header
    (server default when absent, clamped to the server cap).  The
    deadline propagates into the chase as a {!Ekg_engine.Chase.budget};
    an exhausted deadline answers [504 deadline_exceeded] with the
    partial chase progress in [detail].  When the chase was already
    cached and only verbalization remains, an expired deadline degrades
    the response instead: [200] with ["degraded": true] and template
    skeletons in place of prose.

    Every request is assigned a process-unique trace id, echoed back in
    an [X-Ekg-Trace-Id] response header; explain requests additionally
    record a span tree (request → chase → explain stages) under that id,
    retrievable via [GET /v1/sessions/:id/trace].  Finished spans feed
    the [ekg_pipeline_stage_*] series; chase materializations feed
    [ekg_chase_*]; admission control feeds [ekg_server_shed_total],
    [ekg_request_deadline_exceeded_total] and [ekg_server_queue_depth]. *)

type state

val make_state :
  ?root:string ->
  ?chase_domains:int ->
  ?fault:Fault.t ->
  ?default_deadline_ms:float ->
  ?max_deadline_ms:float ->
  ?store:Ekg_store.Store.t ->
  ?snapshot_mode:Ekg_store.Snapshotter.mode ->
  ?max_hot_sessions:int ->
  ?log:Ekg_obs.Log.t ->
  unit ->
  state
(** Fresh registry + metrics + observability registry + tracer; [root]
    anchors [program_path] / [facts_dir] session specs.
    [chase_domains] (default [1]) is the match-phase fan-out of every
    chase materialization — orthogonal to the HTTP worker-domain count.
    [fault] (default {!Fault.Off}) injects the configured fault:
    [Delay] sleeps before handling each session request, [Slow_chase]
    stretches materializations (see {!Registry.create}).
    [default_deadline_ms] (default [30_000]) applies when a request
    carries no [X-Ekg-Deadline-Ms]; [max_deadline_ms] (default
    [300_000]) caps what a client may ask for.  The mandatory chase
    and robustness series are pre-declared so Prometheus scrapes see
    them before the first materialization or shed.

    [store] enables the persistence tier (see {!Registry.create}):
    snapshots after creation/update/materialization, warm restores on
    cache miss, startup recovery, and — with [max_hot_sessions] > 0 —
    LRU demotion of cold materializations to disk.  The store's
    metrics sink is re-bound to this state's observability registry,
    and the five [ekg_store_*] series are pre-declared so they appear
    at zero from the first scrape.  [snapshot_mode] picks where
    snapshot work runs (default write-behind on a dedicated domain). *)

val registry : state -> Registry.t
val metrics : state -> Metrics.t

val obs : state -> Ekg_obs.Metrics.t
(** The chase/pipeline-stage series appended to the Prometheus
    exposition. *)

val tracer : state -> Ekg_obs.Trace.t
(** The request tracer (ring buffer of recent explain traces). *)

val log : state -> Ekg_obs.Log.t
(** The structured logger receiving one wide event per request.
    Defaults to a sink-less logger that still feeds the slow-request
    ring; pass [?log] to {!make_state} (the [--log-file] flag) to
    write JSONL. *)

val runtime : state -> Ekg_obs.Runtime.t
(** The runtime sampler (created stopped; the daemon {!Ekg_obs.Runtime.start}s
    it, and [GET /v1/debug/runtime] drives a synchronous pass either way).
    The server registers its worker-pool source here; the snapshotter
    gauges are pre-registered when a store is configured. *)

val fault : state -> Fault.t
(** The injected fault, for the accept/dispatch loops ({!Fault.Delay}
    and {!Fault.Slow_chase} are consumed inside the router/registry;
    {!Fault.Refuse_accept} must be honoured by the acceptor). *)

val handle : ?queue_wait_s:float -> state -> Http.request -> Http.response
(** Dispatch one request, recording latency and status against the
    route label (path parameters collapsed to [:id]) and stamping the
    [X-Ekg-Trace-Id] header.  Also emits the request's {e wide event}
    — one JSONL record carrying trace id, endpoint, status/error code,
    [queue_wait_s] (the admission-queue wait the server measured),
    per-request GC deltas, and whatever the handled tiers contributed
    through {!Ekg_obs.Log.Ctx} (session, chase source and cost, cache
    hits, snapshot scheduling) — and maintains the in-flight table
    behind [GET /v1/debug/inflight]. *)

val handle_overload : state -> Http.request -> Http.response
(** The load-shedding response: [503] with the [overloaded] envelope
    and [Retry-After: 1].  Bumps [ekg_server_shed_total] and records
    the request under the ["(shed)"] endpoint label. *)

val set_queue_depth : state -> int -> unit
(** Publish the admission-queue depth as the [ekg_server_queue_depth]
    gauge. *)

val handle_parse_error : state -> Http.error -> Http.response
(** The envelope response for a request that never parsed; also
    recorded in the metrics under ["(parse-error)"]. *)
