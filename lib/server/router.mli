(** Route table of the explanation service.

    {v
    GET  /health                  liveness + uptime
    GET  /metrics                 counters and latency quantiles
    POST /sessions                load a program/glossary/EDB triple
    GET  /sessions                list sessions
    POST /sessions/:id/explain    explain the facts matching an atom query
    GET  /sessions/:id/templates  both template families of a session
    v}

    Every response body is JSON; errors are [{"error": …}].  Handler
    exceptions are caught and mapped to 500 so a worker domain never
    dies on a request. *)

type state

val make_state : ?root:string -> unit -> state
(** Fresh registry + metrics; [root] anchors [program_path] /
    [facts_dir] session specs. *)

val registry : state -> Registry.t
val metrics : state -> Metrics.t

val handle : state -> Http.request -> Http.response
(** Dispatch one request, recording latency and status against the
    route label (path parameters collapsed to [:id]). *)

val handle_parse_error : state -> Http.error -> Http.response
(** The response for a request that never parsed; also recorded in the
    metrics under ["(parse-error)"]. *)
