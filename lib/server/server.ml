type config = {
  host : string;
  port : int;
  domains : int;
  backlog : int;
  max_body_bytes : int;
  max_header_bytes : int;
  queue_high_water : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    domains = 4;
    backlog = 64;
    max_body_bytes = 4 * 1024 * 1024;
    max_header_bytes = 16 * 1024;
    queue_high_water = 64;
  }

type t = {
  config : config;
  state : Router.state;
  listener : Unix.file_descr;
  bound_port : int;
  stop_requested : bool Atomic.t;
  accepting_done : bool Atomic.t;
  queue : (Unix.file_descr * float) Queue.t;
      (* admitted, with enqueue timestamp so the dequeuing worker can
         report the admission-queue wait; guarded by [qlock] *)
  shed_queue : Unix.file_descr Queue.t; (* past high-water; guarded by [qlock] *)
  qlock : Mutex.t;
  qcond : Condition.t;      (* workers wait here *)
  shed_cond : Condition.t;  (* the shed domain waits here *)
  worker_busy : float array;
      (* per-worker busy clocks (seconds handling connections), one
         slot per worker domain, each written only by its own worker;
         published by the runtime sampler as utilization gauges *)
  started_at : float;
  mutable threads : unit Domain.t list;
  joined : bool Atomic.t;
}

(* --- per-connection work --------------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let serve_connection t ~respond fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        (* a stuck or silent client must not pin a worker domain *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.;
        let read bytes off len =
          try Unix.read fd bytes off len
          with Unix.Unix_error (Unix.EINTR, _, _) -> 0
        in
        let response =
          match
            Http.parse_request ~max_header_bytes:t.config.max_header_bytes
              ~max_body_bytes:t.config.max_body_bytes ~read ()
          with
          | Ok request -> Some (respond request)
          | Error Http.Closed -> None
          | Error err -> Some (Router.handle_parse_error t.state err)
        in
        match response with
        | None -> ()
        | Some resp ->
          let payload = Http.response_to_string resp in
          write_all fd payload 0 (String.length payload);
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
      with Unix.Unix_error _ -> ())

let handle_connection t ~queue_wait_s fd =
  serve_connection t ~respond:(Router.handle ~queue_wait_s t.state) fd

(* The shed lane still answers probes: liveness and scrapes must observe
   the overload, not join it.  Everything else gets the 503 envelope. *)
let shed_respond t (req : Http.request) =
  match req.meth, req.path with
  | Http.GET, ([ "v1"; ("health" | "metrics") ] | [ "health" | "metrics" ]) ->
    Router.handle t.state req
  | _ -> Router.handle_overload t.state req

(* --- domains --------------------------------------------------------------- *)

let worker_loop t ~slot () =
  let rec next () =
    Mutex.lock t.qlock;
    let rec await () =
      if not (Queue.is_empty t.queue) then begin
        let job = Queue.pop t.queue in
        Router.set_queue_depth t.state (Queue.length t.queue);
        Some job
      end
      else if Atomic.get t.accepting_done then None
      else begin
        Condition.wait t.qcond t.qlock;
        await ()
      end
    in
    let job = await () in
    Mutex.unlock t.qlock;
    match job with
    | None -> ()
    | Some (fd, enqueued_at) ->
      let t0 = Unix.gettimeofday () in
      let queue_wait_s = Float.max 0. (t0 -. enqueued_at) in
      handle_connection t ~queue_wait_s fd;
      t.worker_busy.(slot) <-
        t.worker_busy.(slot) +. Float.max 0. (Unix.gettimeofday () -. t0);
      next ()
  in
  next ()

let shed_loop t () =
  let rec next () =
    Mutex.lock t.qlock;
    let rec await () =
      if not (Queue.is_empty t.shed_queue) then Some (Queue.pop t.shed_queue)
      else if Atomic.get t.accepting_done then None
      else begin
        Condition.wait t.shed_cond t.qlock;
        await ()
      end
    in
    let job = await () in
    Mutex.unlock t.qlock;
    match job with
    | None -> ()
    | Some fd ->
      serve_connection t ~respond:(shed_respond t) fd;
      next ()
  in
  next ()

let enqueue t fd =
  Mutex.lock t.qlock;
  if Queue.length t.queue >= t.config.queue_high_water then begin
    Queue.push fd t.shed_queue;
    Condition.signal t.shed_cond
  end
  else begin
    Queue.push (fd, Unix.gettimeofday ()) t.queue;
    Router.set_queue_depth t.state (Queue.length t.queue);
    Condition.signal t.qcond
  end;
  Mutex.unlock t.qlock

let accept_loop t () =
  while not (Atomic.get t.stop_requested) do
    match Router.fault t.state with
    | Fault.Refuse_accept ->
      (* injected acceptor stall: connections queue in the listen backlog *)
      (try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | _ -> (
      match Unix.select [ t.listener ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listener with
        | fd, _ -> enqueue t fd
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  (* graceful drain: no new connections; publish the done flag before
     waking every worker (and the shed lane) so the queued connections
     are answered and the pool can wind down *)
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  Atomic.set t.accepting_done true;
  Mutex.lock t.qlock;
  Condition.broadcast t.qcond;
  Condition.broadcast t.shed_cond;
  Mutex.unlock t.qlock

(* --- lifecycle ------------------------------------------------------------- *)

let start ?(config = default_config) state =
  let listener = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listener config.backlog
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    {
      config;
      state;
      listener;
      bound_port;
      stop_requested = Atomic.make false;
      accepting_done = Atomic.make false;
      queue = Queue.create ();
      shed_queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      shed_cond = Condition.create ();
      worker_busy = Array.make (max 1 config.domains) 0.;
      started_at = Unix.gettimeofday ();
      threads = [];
      joined = Atomic.make false;
    }
  in
  let workers =
    List.init (max 1 config.domains) (fun i ->
        Domain.spawn (worker_loop t ~slot:i))
  in
  let shedder = Domain.spawn (shed_loop t) in
  let acceptor = Domain.spawn (accept_loop t) in
  t.threads <- acceptor :: shedder :: workers;
  (* publish per-worker busy clocks through the runtime sampler so
     [GET /v1/debug/runtime] and the metrics endpoint expose HTTP
     pool utilization alongside the chase pool's *)
  Ekg_obs.Runtime.register (Router.runtime state) "server-pool" (fun () ->
      let n = Array.length t.worker_busy in
      let wall = Float.max 1e-9 (Unix.gettimeofday () -. t.started_at) in
      let total = Array.fold_left ( +. ) 0. t.worker_busy in
      Ekg_obs.Runtime.
        [
          {
            s_name = "ekg_server_workers";
            s_help = "HTTP worker domains in the pool";
            s_labels = [];
            s_value = float_of_int n;
          };
          {
            s_name = "ekg_server_pool_utilization";
            s_help =
              "Fraction of pool capacity spent handling connections \
               since start";
            s_labels = [];
            s_value = Float.min 1. (total /. (wall *. float_of_int n));
          };
        ]
      @ List.init n (fun i ->
            Ekg_obs.Runtime.
              {
                s_name = "ekg_server_worker_busy_seconds_total";
                s_help = "Seconds this worker domain spent handling \
                          connections";
                s_labels = [ ("worker", string_of_int i) ];
                s_value = t.worker_busy.(i);
              }));
  t

let port t = t.bound_port
let request_stop t = Atomic.set t.stop_requested true

let stop t =
  request_stop t;
  if not (Atomic.exchange t.joined true) then List.iter Domain.join t.threads

let wait t =
  while not (Atomic.get t.stop_requested) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  stop t
