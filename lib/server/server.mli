(** The daemon: a TCP listener whose accepted connections are fanned
    out to an OCaml 5 [Domain] worker pool, behind bounded admission
    control.  One domain runs the accept loop (polling so shutdown is
    prompt), [config.domains] workers drain the admission queue, and a
    dedicated {e shed lane} domain answers connections that arrive
    while the queue sits at [queue_high_water] or above: probes
    ([GET /v1/health], [GET /v1/metrics], and their legacy aliases) are
    served inline so liveness survives overload, everything else is
    answered immediately with [503] + [Retry-After] + the [overloaded]
    envelope ({!Router.handle_overload}) instead of waiting behind work
    that will time out anyway.  Each connection carries exactly one
    HTTP request.  [stop] performs a graceful drain: stop accepting,
    finish every queued connection — admitted and shed — then join all
    domains. *)

type config = {
  host : string;           (** bind address, default ["127.0.0.1"] *)
  port : int;              (** [0] picks an ephemeral port *)
  domains : int;           (** worker domains, default 4 *)
  backlog : int;
  max_body_bytes : int;
  max_header_bytes : int;
  queue_high_water : int;
      (** admission-queue depth at or above which new connections are
          shed (default 64); [0] sheds every non-probe request — useful
          for drills and smoke tests *)
}

val default_config : config

type t

val start : ?config:config -> Router.state -> t
(** Bind, listen, and spawn the accept domain, the shed-lane domain and
    the workers.  Honours the router state's {!Fault.Refuse_accept}
    fault (the acceptor idles instead of accepting).  Raises
    [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The actual bound port (useful with [port = 0]). *)

val request_stop : t -> unit
(** Flag the server to shut down; safe to call from a signal handler.
    Returns immediately. *)

val stop : t -> unit
(** [request_stop] then drain and join every domain.  Idempotent;
    blocks until in-flight and queued connections are answered. *)

val wait : t -> unit
(** Block until {!request_stop} is called (e.g. by a signal handler),
    then drain and join as {!stop} does. *)
