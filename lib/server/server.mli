(** The daemon: a TCP listener whose accepted connections are fanned
    out to an OCaml 5 [Domain] worker pool.  One domain runs the
    accept loop (polling so shutdown is prompt), [config.domains]
    workers drain a shared queue; each connection carries exactly one
    HTTP request.  [stop] performs a graceful drain: stop accepting,
    finish every queued connection, join all domains. *)

type config = {
  host : string;           (** bind address, default ["127.0.0.1"] *)
  port : int;              (** [0] picks an ephemeral port *)
  domains : int;           (** worker domains, default 4 *)
  backlog : int;
  max_body_bytes : int;
  max_header_bytes : int;
}

val default_config : config

type t

val start : ?config:config -> Router.state -> t
(** Bind, listen, and spawn the accept domain plus workers.  Raises
    [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The actual bound port (useful with [port = 0]). *)

val request_stop : t -> unit
(** Flag the server to shut down; safe to call from a signal handler.
    Returns immediately. *)

val stop : t -> unit
(** [request_stop] then drain and join every domain.  Idempotent;
    blocks until in-flight and queued connections are answered. *)

val wait : t -> unit
(** Block until {!request_stop} is called (e.g. by a signal handler),
    then drain and join as {!stop} does. *)
