open Ekg_datalog
open Ekg_engine

type spec =
  | App of string
  | Files of { program : string; glossary : string option; facts_dir : string option }
  | Inline of { program : string; glossary : string option }

type t = {
  id : string;
  name : string;
  spec : spec;
  program_hash : string;
  update_gen : int;
  created_at : float;
  edb : Atom.t list;
  mat : Chase.result option;
}

let magic = "EKGSNAP0"
let format_version = 1

type error =
  | Bad_magic
  | Version_mismatch of { found : int; expected : int }
  | Truncated
  | Corrupt of string
  | Fingerprint_mismatch of { expected : string; got : string }

let error_to_string = function
  | Bad_magic -> "not a session snapshot (bad magic)"
  | Version_mismatch { found; expected } ->
    Printf.sprintf "snapshot format version %d (this build reads %d)" found
      expected
  | Truncated -> "snapshot is truncated"
  | Corrupt m -> "snapshot is corrupt: " ^ m
  | Fingerprint_mismatch { expected; got } ->
    Printf.sprintf
      "restored instance fingerprint %s does not match recorded %s" got
      expected

(* --- section checksums -------------------------------------------------------

   FNV-1a over the section bytes, stored as 8 raw bytes after the
   section.  Detects the single-bit rot and partial-overwrite cases the
   qcheck corruption property exercises; end-to-end instance integrity
   is additionally guarded by the fingerprint digest in the header. *)

let fnv1a s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let w_checksum b h =
  for i = 0 to 7 do
    Wire.w_u8 b (Int64.to_int (Int64.shift_right_logical h (8 * i)) land 0xff)
  done

let r_checksum r =
  let h = ref 0L in
  for i = 0 to 7 do
    h := Int64.logor !h (Int64.shift_left (Int64.of_int (Wire.r_u8 r)) (8 * i))
  done;
  !h

let w_section b payload =
  Wire.w_int b (String.length payload);
  Buffer.add_string b payload;
  w_checksum b (fnv1a payload)

(* read one length-prefixed, checksummed section and return a reader
   over exactly its payload bytes *)
let read_section r =
  let len = Wire.r_int r in
  if len < 0 then raise (Wire.Corrupt "negative section length");
  let payload = Wire.r_bytes r len in
  let recorded = r_checksum r in
  if not (Int64.equal (fnv1a payload) recorded) then
    raise (Wire.Corrupt "section checksum mismatch");
  Wire.reader payload

(* --- fields ------------------------------------------------------------------ *)

let w_opt_string b = function
  | None -> Wire.w_bool b false
  | Some s ->
    Wire.w_bool b true;
    Wire.w_string b s

let r_opt_string r = if Wire.r_bool r then Some (Wire.r_string r) else None

let w_spec b = function
  | App app ->
    Wire.w_u8 b 0;
    Wire.w_string b app
  | Files { program; glossary; facts_dir } ->
    Wire.w_u8 b 1;
    Wire.w_string b program;
    w_opt_string b glossary;
    w_opt_string b facts_dir
  | Inline { program; glossary } ->
    Wire.w_u8 b 2;
    Wire.w_string b program;
    w_opt_string b glossary

let r_spec r =
  match Wire.r_u8 r with
  | 0 -> App (Wire.r_string r)
  | 1 ->
    let program = Wire.r_string r in
    let glossary = r_opt_string r in
    let facts_dir = r_opt_string r in
    Files { program; glossary; facts_dir }
  | 2 ->
    let program = Wire.r_string r in
    let glossary = r_opt_string r in
    Inline { program; glossary }
  | n -> raise (Wire.Corrupt (Printf.sprintf "spec tag %d" n))

let w_atom b (a : Atom.t) =
  Wire.w_string b a.Atom.pred;
  Wire.w_int b (List.length a.Atom.args);
  List.iter
    (function
      | Term.Cst v -> Wire.w_value b v
      | Term.Var _ -> raise (Wire.Corrupt "non-ground EDB atom"))
    a.Atom.args

let r_atom r =
  let pred = Wire.r_string r in
  let n = Wire.r_int r in
  if n < 0 then raise (Wire.Corrupt "negative atom arity");
  let rec go n acc =
    if n = 0 then List.rev acc else go (n - 1) (Term.Cst (Wire.r_value r) :: acc)
  in
  Atom.make pred (go n [])

let fingerprint_hex db = Digest.to_hex (Digest.string (Database.fingerprint db))

(* --- encode ------------------------------------------------------------------ *)

let encode snap =
  let meta = Buffer.create 1024 in
  Wire.w_string meta snap.id;
  Wire.w_string meta snap.name;
  w_spec meta snap.spec;
  Wire.w_string meta snap.program_hash;
  Wire.w_int meta snap.update_gen;
  Wire.w_float meta snap.created_at;
  (match snap.mat with
  | None -> Wire.w_string meta ""
  | Some mat -> Wire.w_string meta (fingerprint_hex mat.Chase.db));
  Wire.w_int meta (List.length snap.edb);
  List.iter (w_atom meta) snap.edb;
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Wire.w_int b format_version;
  w_section b (Buffer.contents meta);
  (match snap.mat with
  | None -> Wire.w_bool b false
  | Some mat ->
    Wire.w_bool b true;
    let body = Buffer.create 4096 in
    Database.encode body mat.Chase.db;
    Provenance.encode body mat.Chase.prov;
    Wire.w_int body mat.Chase.rounds;
    Wire.w_int body mat.Chase.derived_count;
    w_section b (Buffer.contents body));
  Buffer.contents b

(* --- decode ------------------------------------------------------------------ *)

let decode_header r =
  if not (Wire.expect_magic r magic) then Error Bad_magic
  else
    let found = Wire.r_int r in
    if found <> format_version then
      Error (Version_mismatch { found; expected = format_version })
    else Ok ()

let decode_meta_section mr =
  let id = Wire.r_string mr in
  let name = Wire.r_string mr in
  let spec = r_spec mr in
  let program_hash = Wire.r_string mr in
  let update_gen = Wire.r_int mr in
  let created_at = Wire.r_float mr in
  let fingerprint = Wire.r_string mr in
  let n = Wire.r_int mr in
  if n < 0 then raise (Wire.Corrupt "negative EDB size");
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (r_atom mr :: acc) in
  let edb = go n [] in
  if Wire.remaining mr <> 0 then raise (Wire.Corrupt "trailing bytes in meta");
  ( { id; name; spec; program_hash; update_gen; created_at; edb; mat = None },
    fingerprint )

let with_errors f =
  try f () with
  | Wire.Truncated -> Error Truncated
  | Wire.Corrupt m -> Error (Corrupt m)

let decode_meta data =
  with_errors @@ fun () ->
  let r = Wire.reader data in
  Result.map
    (fun () ->
      let snap, _fp = decode_meta_section (read_section r) in
      snap)
    (decode_header r)

let decode data =
  with_errors @@ fun () ->
  let r = Wire.reader data in
  match decode_header r with
  | Error _ as e -> e
  | Ok () ->
    let snap, recorded_fp = decode_meta_section (read_section r) in
    if not (Wire.r_bool r) then begin
      if Wire.remaining r <> 0 then raise (Wire.Corrupt "trailing bytes");
      Ok snap
    end
    else begin
      let br = read_section r in
      if Wire.remaining r <> 0 then raise (Wire.Corrupt "trailing bytes");
      let db = Database.decode br in
      let prov = Provenance.decode br in
      let rounds = Wire.r_int br in
      let derived_count = Wire.r_int br in
      if Wire.remaining br <> 0 then
        raise (Wire.Corrupt "trailing bytes in materialization");
      let got = fingerprint_hex db in
      if not (String.equal got recorded_fp) then
        Error (Fingerprint_mismatch { expected = recorded_fp; got })
      else
        Ok
          {
            snap with
            mat =
              Some { Chase.db; prov; rounds; derived_count; stats = None };
          }
    end
