(** Versioned binary snapshot codec for persisted sessions.

    A snapshot is the full durable closure of one registry session:
    its identity (id, name, creation spec), the program identity hash
    ({!Ekg_core.Pipeline.identity}), the live-update generation, the
    extensional-base mirror, and — when the session was materialized —
    the complete chase result (database, provenance, round counts) via
    the engine's codec hooks ({!Ekg_engine.Database.encode} and
    friends).

    The byte layout is a magic tag, a format version, then two
    independently length-prefixed and checksummed sections: {e meta}
    (identity + EDB mirror — everything startup recovery needs) and
    {e materialization} (the expensive part, absent for dormant
    sessions).  {!decode_meta} reads and validates only the first
    section, so a recovery scan over thousands of snapshots never
    deserializes a database; {!decode} reads both and additionally
    recomputes {!Ekg_engine.Database.fingerprint} over the restored
    instance against the digest recorded at snapshot time — a restore
    can therefore never silently serve a different instance than the
    one that was persisted.

    Every failure mode is a typed {!error}; no exception escapes
    {!decode}/{!decode_meta}. *)

open Ekg_datalog
open Ekg_engine

(** How the session was created — persisted so a restarted daemon can
    recompile the pipeline.  Mirrors the registry's spec type; the
    mirror lives here because the store layer sits below the server. *)
type spec =
  | App of string
  | Files of { program : string; glossary : string option; facts_dir : string option }
  | Inline of { program : string; glossary : string option }

type t = {
  id : string;                    (** registry session id, e.g. ["s1"] *)
  name : string;
  spec : spec;
  program_hash : string;          (** {!Ekg_core.Pipeline.identity} at snapshot time *)
  update_gen : int;               (** the session's update generation the
                                      snapshot captures — warm restore
                                      refuses a stale one *)
  created_at : float;
  edb : Atom.t list;              (** extensional-base mirror *)
  mat : Chase.result option;      (** the materialization; [None] for
                                      dormant sessions (and always [None]
                                      from {!decode_meta}) *)
}

val format_version : int
(** The codec's current on-disk format version. *)

type error =
  | Bad_magic             (** not a snapshot file *)
  | Version_mismatch of { found : int; expected : int }
  | Truncated             (** the input ends mid-field (interrupted write) *)
  | Corrupt of string     (** checksum mismatch or malformed field *)
  | Fingerprint_mismatch of { expected : string; got : string }
      (** the restored database does not hash to the digest recorded
          at snapshot time *)

val error_to_string : error -> string

val encode : t -> string
(** The snapshot's complete byte image.  Deterministic: equal
    snapshots encode to equal bytes. *)

val decode : string -> (t, error) result
(** Decode and validate everything, fingerprint check included. *)

val decode_meta : string -> (t, error) result
(** Decode and validate the meta section only; [mat] is [None] even
    when the file carries a materialization.  The cheap read behind a
    startup recovery scan. *)
