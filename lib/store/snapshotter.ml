type mode = Off | Write_behind | Sync

let mode_of_string = function
  | "off" -> Ok Off
  | "behind" -> Ok Write_behind
  | "sync" -> Ok Sync
  | other -> Error ("unknown snapshot mode: " ^ other ^ " (off|behind|sync)")

let mode_to_string = function
  | Off -> "off"
  | Write_behind -> "behind"
  | Sync -> "sync"

let queue_depth_metric = "ekg_store_snapshot_queue_depth"
let stall_metric = "ekg_store_snapshot_stall_seconds"

type t = {
  store : Store.t;
  snap_mode : mode;
  lock : Ekg_obs.Lock.t;
      (* instrumented on the request path; the wait loops below take
         the raw mutex so condition-blocked time never lands in the
         hold histogram *)
  cond : Condition.t;
  pending : (string, unit -> Codec.t option) Hashtbl.t;
  order : string Queue.t;  (* FIFO of sids; stale entries are skipped *)
  mutable in_flight : string option;
  mutable in_flight_since : float;
  mutable stopping : bool;
  mutable worker : unit Domain.t option;
}

let mode t = t.snap_mode

let run_job t sid capture =
  match capture () with
  | None -> ()
  | Some snap -> (
    match Store.save t.store snap with
    | Ok _ -> ()
    | Error e ->
      Logs.warn (fun m -> m "ekg-store: snapshot of session %s failed: %s" sid e))
  | exception exn ->
    Logs.warn (fun m ->
        m "ekg-store: snapshot capture of session %s raised: %s" sid
          (Printexc.to_string exn))

(* next sid whose request is still pending (coalescing leaves stale
   queue entries behind; discard removes table entries) *)
let rec pop_pending t =
  match Queue.take_opt t.order with
  | None -> None
  | Some sid -> if Hashtbl.mem t.pending sid then Some sid else pop_pending t

let worker_loop t =
  let mutex = Ekg_obs.Lock.mutex t.lock in
  let rec go () =
    Mutex.lock mutex;
    while Hashtbl.length t.pending = 0 && not t.stopping do
      Condition.wait t.cond mutex
    done;
    match pop_pending t with
    | None ->
      (* stopping with an empty queue *)
      Mutex.unlock mutex
    | Some sid ->
      let capture = Hashtbl.find t.pending sid in
      Hashtbl.remove t.pending sid;
      t.in_flight <- Some sid;
      t.in_flight_since <- Ekg_obs.Clock.now_s ();
      Mutex.unlock mutex;
      run_job t sid capture;
      Mutex.lock mutex;
      t.in_flight <- None;
      Condition.broadcast t.cond;
      Mutex.unlock mutex;
      go ()
  in
  go ()

let create ?(mode = Write_behind) ?obs store =
  let t =
    {
      store;
      snap_mode = mode;
      lock = Ekg_obs.Lock.create ?obs "snapshotter";
      cond = Condition.create ();
      pending = Hashtbl.create 16;
      order = Queue.create ();
      in_flight = None;
      in_flight_since = 0.;
      stopping = false;
      worker = None;
    }
  in
  if mode = Write_behind then t.worker <- Some (Domain.spawn (fun () -> worker_loop t));
  t

let set_obs t obs = Ekg_obs.Lock.set_obs t.lock obs

let request t ~sid capture =
  match t.snap_mode with
  | Off -> ()
  | Sync -> run_job t sid capture
  | Write_behind ->
    Ekg_obs.Lock.lock t.lock;
    if t.stopping then begin
      (* the daemon is draining: persist inline rather than drop *)
      Ekg_obs.Lock.unlock t.lock;
      run_job t sid capture
    end
    else begin
      if not (Hashtbl.mem t.pending sid) then Queue.push sid t.order;
      Hashtbl.replace t.pending sid capture;
      Condition.broadcast t.cond;
      Ekg_obs.Lock.unlock t.lock
    end

let discard t ~sid =
  let mutex = Ekg_obs.Lock.mutex t.lock in
  Mutex.lock mutex;
  Hashtbl.remove t.pending sid;
  while t.in_flight = Some sid do
    Condition.wait t.cond mutex
  done;
  Mutex.unlock mutex

let flush t =
  let mutex = Ekg_obs.Lock.mutex t.lock in
  Mutex.lock mutex;
  while Hashtbl.length t.pending > 0 || t.in_flight <> None do
    Condition.wait t.cond mutex
  done;
  Mutex.unlock mutex

let stop t =
  let mutex = Ekg_obs.Lock.mutex t.lock in
  Mutex.lock mutex;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock mutex;
  (match t.worker with None -> () | Some d -> Domain.join d);
  t.worker <- None

let depth t =
  Ekg_obs.Lock.with_lock t.lock (fun () ->
      Hashtbl.length t.pending + if t.in_flight = None then 0 else 1)

let stall_s t =
  Ekg_obs.Lock.with_lock t.lock (fun () ->
      match t.in_flight with
      | None -> 0.
      | Some _ -> Float.max 0. (Ekg_obs.Clock.now_s () -. t.in_flight_since))

let runtime_samples t () =
  [
    {
      Ekg_obs.Runtime.s_name = queue_depth_metric;
      s_help = "Snapshot requests pending or in flight on the write-behind queue.";
      s_labels = [];
      s_value = float_of_int (depth t);
    };
    {
      Ekg_obs.Runtime.s_name = stall_metric;
      s_help = "Seconds the current in-flight snapshot save has been running.";
      s_labels = [];
      s_value = stall_s t;
    };
  ]
