type mode = Off | Write_behind | Sync

let mode_of_string = function
  | "off" -> Ok Off
  | "behind" -> Ok Write_behind
  | "sync" -> Ok Sync
  | other -> Error ("unknown snapshot mode: " ^ other ^ " (off|behind|sync)")

let mode_to_string = function
  | Off -> "off"
  | Write_behind -> "behind"
  | Sync -> "sync"

type t = {
  store : Store.t;
  snap_mode : mode;
  lock : Mutex.t;
  cond : Condition.t;
  pending : (string, unit -> Codec.t option) Hashtbl.t;
  order : string Queue.t;  (* FIFO of sids; stale entries are skipped *)
  mutable in_flight : string option;
  mutable stopping : bool;
  mutable worker : unit Domain.t option;
}

let mode t = t.snap_mode

let run_job t sid capture =
  match capture () with
  | None -> ()
  | Some snap -> (
    match Store.save t.store snap with
    | Ok _ -> ()
    | Error e ->
      Logs.warn (fun m -> m "ekg-store: snapshot of session %s failed: %s" sid e))
  | exception exn ->
    Logs.warn (fun m ->
        m "ekg-store: snapshot capture of session %s raised: %s" sid
          (Printexc.to_string exn))

(* next sid whose request is still pending (coalescing leaves stale
   queue entries behind; discard removes table entries) *)
let rec pop_pending t =
  match Queue.take_opt t.order with
  | None -> None
  | Some sid -> if Hashtbl.mem t.pending sid then Some sid else pop_pending t

let worker_loop t =
  let rec go () =
    Mutex.lock t.lock;
    while Hashtbl.length t.pending = 0 && not t.stopping do
      Condition.wait t.cond t.lock
    done;
    match pop_pending t with
    | None ->
      (* stopping with an empty queue *)
      Mutex.unlock t.lock
    | Some sid ->
      let capture = Hashtbl.find t.pending sid in
      Hashtbl.remove t.pending sid;
      t.in_flight <- Some sid;
      Mutex.unlock t.lock;
      run_job t sid capture;
      Mutex.lock t.lock;
      t.in_flight <- None;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      go ()
  in
  go ()

let create ?(mode = Write_behind) store =
  let t =
    {
      store;
      snap_mode = mode;
      lock = Mutex.create ();
      cond = Condition.create ();
      pending = Hashtbl.create 16;
      order = Queue.create ();
      in_flight = None;
      stopping = false;
      worker = None;
    }
  in
  if mode = Write_behind then t.worker <- Some (Domain.spawn (fun () -> worker_loop t));
  t

let request t ~sid capture =
  match t.snap_mode with
  | Off -> ()
  | Sync -> run_job t sid capture
  | Write_behind ->
    Mutex.lock t.lock;
    if t.stopping then begin
      (* the daemon is draining: persist inline rather than drop *)
      Mutex.unlock t.lock;
      run_job t sid capture
    end
    else begin
      if not (Hashtbl.mem t.pending sid) then Queue.push sid t.order;
      Hashtbl.replace t.pending sid capture;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock
    end

let discard t ~sid =
  Mutex.lock t.lock;
  Hashtbl.remove t.pending sid;
  while t.in_flight = Some sid do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock

let flush t =
  Mutex.lock t.lock;
  while Hashtbl.length t.pending > 0 || t.in_flight <> None do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock

let stop t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  (match t.worker with None -> () | Some d -> Domain.join d);
  t.worker <- None
