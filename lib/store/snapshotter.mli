(** Write-behind session persistence: snapshot saves happen off the
    request path, on one dedicated background domain.

    A request names a session and a {e capture} closure.  Captures are
    cheap by construction — under the copy-on-write registry
    discipline a published {!Ekg_engine.Chase.result} is immutable, so
    capturing a consistent snapshot means grabbing pointers under the
    session lock, not copying data; the expensive encode + fsync run
    afterwards on the snapshotter's own domain.

    Requests {e coalesce} per session: while a session already has a
    pending request, a new one replaces its capture closure instead of
    queueing behind it, so a burst of fact updates to one session costs
    a single snapshot of the final state.  Ordering across sessions is
    FIFO by first request.

    The [`Sync] mode runs every request inline on the caller (tests,
    and deployments that prefer commit-latency over throughput);
    [`Off] drops them (snapshots then only happen at eviction time). *)

type mode = Off | Write_behind | Sync

val mode_of_string : string -> (mode, string) result
(** ["off" | "behind" | "sync"]; the [--snapshot] server flag. *)

val mode_to_string : mode -> string

type t

val create : ?mode:mode -> ?obs:Ekg_obs.Metrics.t -> Store.t -> t
(** Spawns the background domain iff [mode] (default [Write_behind])
    is [Write_behind].  [obs] instruments the snapshotter's queue
    mutex (wait/hold histograms labeled [{lock="snapshotter"}]). *)

val set_obs : t -> Ekg_obs.Metrics.t -> unit
(** Re-bind the lock instrumentation sink (see {!Store.set_obs}). *)

val mode : t -> mode

val depth : t -> int
(** Snapshot requests pending or in flight — the write-behind queue
    depth a stalled disk lets grow. *)

val stall_s : t -> float
(** How long the current in-flight save has been running ([0.] when
    idle) — a large value means a snapshot is stalling the drain. *)

val runtime_samples : t -> unit -> Ekg_obs.Runtime.sample list
(** A {!Ekg_obs.Runtime.register} source publishing
    {!queue_depth_metric} and {!stall_metric}. *)

val queue_depth_metric : string
(** ["ekg_store_snapshot_queue_depth"]. *)

val stall_metric : string
(** ["ekg_store_snapshot_stall_seconds"]. *)

val request : t -> sid:string -> (unit -> Codec.t option) -> unit
(** Ask for session [sid] to be persisted.  [capture] runs on the
    snapshotter domain (or inline under [`Sync]); answering [None]
    skips the save (the session vanished meanwhile).  Save failures
    are logged, never raised — persistence is best-effort behind a
    serving path that must not block. *)

val discard : t -> sid:string -> unit
(** Drop any pending request for [sid] and wait out an in-flight save
    of it, so a caller deleting the session's snapshot file cannot race
    a concurrent re-write. *)

val flush : t -> unit
(** Block until the queue is empty and no save is in flight. *)

val stop : t -> unit
(** Drain the queue, then join the background domain.  Idempotent. *)
