type t = {
  dir : string;
  mutable obs : Ekg_obs.Metrics.t;
}

let snapshot_bytes_metric = "ekg_store_snapshot_bytes"
let snapshot_seconds_metric = "ekg_store_snapshot_seconds"
let restore_seconds_metric = "ekg_store_restore_seconds"

let suffix = ".snap"

let valid_id id =
  String.length id > 0
  && id.[0] <> '.'
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       id

let dir t = t.dir
let set_obs t obs = t.obs <- obs
let path t id = Filename.concat t.dir (id ^ suffix)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir ?(obs = Ekg_obs.Metrics.noop ()) dir =
  match
    mkdir_p dir;
    Sys.is_directory dir
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error (dir ^ ": " ^ Unix.error_message err)
  | exception Sys_error e -> Error e
  | false -> Error (dir ^ ": not a directory")
  | true ->
    (* sweep torn tmp files from a crash mid-save; their rename never
       happened, so the previous complete snapshot is still in place *)
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".tmp" then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    Ok { dir; obs }

(* fsync the directory so the rename itself is durable; best-effort —
   some filesystems refuse fsync on directories *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let save t snap =
  if not (valid_id snap.Codec.id) then
    Error ("invalid session id for a snapshot file: " ^ snap.Codec.id)
  else begin
    let t0 = Ekg_obs.Clock.now_s () in
    let bytes = Codec.encode snap in
    let final = path t snap.Codec.id in
    let tmp =
      Printf.sprintf "%s.%d.tmp" final (Unix.getpid ())
    in
    match
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let len = String.length bytes in
          let written = ref 0 in
          while !written < len do
            written :=
              !written
              + Unix.write_substring fd bytes !written (len - !written)
          done;
          Unix.fsync fd);
      Unix.rename tmp final;
      fsync_dir t.dir
    with
    | exception Unix.Unix_error (err, syscall, _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "%s: %s (%s)" final (Unix.error_message err) syscall)
    | () ->
      Ekg_obs.Metrics.add t.obs
        ~help:"Cumulative session snapshot bytes written"
        snapshot_bytes_metric
        (float_of_int (String.length bytes));
      Ekg_obs.Metrics.add t.obs
        ~help:"Seconds spent encoding and durably writing session snapshots"
        snapshot_seconds_metric
        (Ekg_obs.Clock.now_s () -. t0);
      Ok (String.length bytes)
  end

let read_file file =
  match open_in_bin file with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Ok s
        | exception End_of_file -> Error (file ^ ": unreadable"))

let load_with decode t id =
  if not (valid_id id) then Error ("invalid session id: " ^ id)
  else
    match read_file (path t id) with
    | Error _ as e -> e
    | Ok data -> (
      match decode data with
      | Ok _ as ok -> ok
      | Error e -> Error (path t id ^ ": " ^ Codec.error_to_string e))

let load t id =
  let t0 = Ekg_obs.Clock.now_s () in
  match load_with Codec.decode t id with
  | Error _ as e -> e
  | Ok _ as ok ->
    Ekg_obs.Metrics.add t.obs
      ~help:"Seconds spent reading and decoding snapshots on warm restores"
      restore_seconds_metric
      (Ekg_obs.Clock.now_s () -. t0);
    ok

let load_meta t id = load_with Codec.decode_meta t id

let delete t id =
  if valid_id id then
    try Sys.remove (path t id) with Sys_error _ -> ()

let scan t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun f ->
           if Filename.check_suffix f suffix then begin
             let id = Filename.chop_suffix f suffix in
             if valid_id id then Some id else None
           end
           else None)
    |> List.sort (fun a b ->
           match compare (String.length a) (String.length b) with
           | 0 -> String.compare a b
           | c -> c)
