(** The on-disk snapshot store: one file per session under a store
    directory, written atomically and scanned at startup recovery.

    Durability discipline: {!save} writes the encoded snapshot to a
    temporary file in the same directory, [fsync]s it, [rename]s it
    over the final [<id>.snap] path, then [fsync]s the directory — a
    crash at any instant leaves either the previous complete snapshot
    or the new complete snapshot, never a torn file.  (A torn tmp file
    left by a crash is ignored by {!scan} and swept by {!open_dir}.)

    The store records its timing/volume series on the registry it is
    created with: {!snapshot_seconds_metric} and
    {!snapshot_bytes_metric} on every save, {!restore_seconds_metric}
    on every successful full load. *)

type t

val snapshot_bytes_metric : string
(** ["ekg_store_snapshot_bytes"] — cumulative snapshot bytes written. *)

val snapshot_seconds_metric : string
(** ["ekg_store_snapshot_seconds"] — cumulative seconds spent encoding
    and durably writing snapshots. *)

val restore_seconds_metric : string
(** ["ekg_store_restore_seconds"] — cumulative seconds spent reading
    and decoding snapshots on warm restores. *)

val open_dir : ?obs:Ekg_obs.Metrics.t -> string -> (t, string) result
(** Create (mkdir -p) or open the store directory; sweeps orphaned
    [*.tmp] files from interrupted writes.  The error is the system
    message (not a directory, permission, …). *)

val dir : t -> string

val set_obs : t -> Ekg_obs.Metrics.t -> unit
(** Re-bind the metrics registry the store records on — the server
    opens the store before its observability registry exists, then
    points it at the scrapeable one. *)

val path : t -> string -> string
(** [path t id] is the snapshot file of session [id] —
    [<dir>/<id>.snap]. *)

val save : t -> Codec.t -> (int, string) result
(** Atomically persist the snapshot under its session id; returns the
    byte size written.  Rejects ids that are not simple file names (no
    separators, no leading dot). *)

val load : t -> string -> (Codec.t, string) result
(** Read and fully decode (and fingerprint-validate) a session's
    snapshot.  [Error] carries a human-readable reason — missing file,
    I/O failure, or a {!Codec.error} rendering; warm-restore callers
    treat every error as "fall back to a cold chase". *)

val load_meta : t -> string -> (Codec.t, string) result
(** Like {!load} but validates and decodes the meta section only
    ([mat] is always [None]) — the recovery-scan read. *)

val delete : t -> string -> unit
(** Remove the session's snapshot if present; idempotent. *)

val scan : t -> string list
(** Session ids with a snapshot on disk, sorted shortest-first then
    lexicographically (so ["s2"] precedes ["s10"]). *)
