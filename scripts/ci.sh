#!/usr/bin/env bash
# Tier-1 gate plus the server smoke test (which also scrapes the
# Prometheus /metrics exposition and executes the live fact-update
# walkthrough of examples/incremental_walkthrough.md), the query-lane
# smoke (magic-sets point queries, answer-cache warm-up, update
# invalidation and the ekg_query_* series over loopback HTTP), the
# restart-recovery smoke (kill + restart on the same --store-dir;
# explanations must be served again without re-running the chase), the
# scale-harness smoke (tiny-N generate -> serve -> CDC replay ->
# identity gate, with the ekg_loadgen_* series asserted), the parallel-
# chase bench smoke (writes BENCH_chase.json: wall-clock at domains=1
# vs 4, admission overhead, incremental maintenance vs cold re-chase,
# snapshot/restore vs cold chase; fails if parallel, incremental or
# restored state ever diverges), the join-engine identity smoke (a
# bundled app under the hash and nested engines must fingerprint
# identically), and the documentation gate
# (doc-comment lint always; `dune build @doc` + HTML artifact when
# odoc is installed). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @smoke
dune build @smoke-faults
dune build @smoke-query
dune build @smoke-recovery
dune build @smoke-scale
dune exec bench/main.exe -- chase-smoke

# join-engine identity: the columnar hash-join chase and the nested-loop
# escape hatch must produce byte-identical output (facts, provenance,
# explanations) on a bundled app
fp_hash="$(dune exec bin/profile.exe -- company-control --join hash --fingerprint | sed -n 's/^fingerprint: //p')"
fp_nested="$(dune exec bin/profile.exe -- company-control --join nested --fingerprint | sed -n 's/^fingerprint: //p')"
if [ -z "$fp_hash" ] || [ "$fp_hash" != "$fp_nested" ]; then
  echo "ci: join-engine fingerprints diverge (hash=$fp_hash nested=$fp_nested)" >&2
  exit 1
fi
echo "ci: join-engine identity ok ($fp_hash)"

# documentation: lint is unconditional; rendering needs odoc, which
# not every CI image carries — skip rendering gracefully when absent
bash scripts/doc_lint.sh
if command -v odoc >/dev/null 2>&1; then
  warnings="$(mktemp)"
  dune build @doc 2> >(tee "$warnings" >&2)
  if [ -s "$warnings" ]; then
    echo "ci: dune build @doc emitted warnings" >&2
    rm -f "$warnings"
    exit 1
  fi
  rm -f "$warnings"
  # publishable artifact (CI systems upload this directory)
  rm -rf _build/odoc-artifact
  cp -r _build/default/_doc/_html _build/odoc-artifact
  echo "ci: odoc HTML artifact at _build/odoc-artifact"
else
  echo "ci: odoc not installed; skipped @doc rendering (doc lint still enforced)"
fi

echo "ci: all green (build + tests + smoke/metrics + fault drills + restart recovery + scale replay + chase bench + docs)"
