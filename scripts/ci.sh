#!/usr/bin/env bash
# Tier-1 gate plus the server smoke test (which also scrapes the
# Prometheus /metrics exposition). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @smoke
echo "ci: all green (build + tests + smoke/metrics)"
