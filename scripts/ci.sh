#!/usr/bin/env bash
# Tier-1 gate plus the server smoke test (which also scrapes the
# Prometheus /metrics exposition) and the parallel-chase bench smoke,
# which writes BENCH_chase.json (wall-clock at domains=1 vs 4,
# speedup, facts/sec) and fails if parallel output ever diverges from
# sequential. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @smoke
dune build @smoke-faults
dune exec bench/main.exe -- chase-smoke
echo "ci: all green (build + tests + smoke/metrics + fault drills + chase bench)"
