#!/usr/bin/env bash
# Documentation lint: every public interface of the reasoning,
# persistence and data-generation layers (lib/engine, lib/core,
# lib/store, lib/datagen) must open with an odoc module-level comment —
# `(**` as the first non-blank characters — so `dune build @doc` renders
# a synopsis for every module and new interfaces cannot land
# undocumented.  Run from anywhere; exits non-zero listing offenders.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for f in lib/engine/*.mli lib/core/*.mli lib/store/*.mli lib/datagen/*.mli; do
  # first non-blank line must start a doc comment
  first="$(awk 'NF {print; exit}' "$f")"
  case "$first" in
    "(**"*) ;;
    *)
      echo "doc-lint: $f lacks a module-level doc comment (must open with (** ...)" >&2
      fail=1
      ;;
  esac
done

if [ "$fail" -ne 0 ]; then
  echo "doc-lint: failed" >&2
  exit 1
fi
echo "doc-lint: ok ($(ls lib/engine/*.mli lib/core/*.mli lib/store/*.mli lib/datagen/*.mli | wc -l | tr -d ' ') interfaces documented)"
