#!/usr/bin/env bash
# Server smoke test: boot the daemon on an ephemeral port, hit
# /v1/health, scrape /v1/metrics in Prometheus format (the mandatory
# series must be present), check the legacy paths answer 301 with a
# Location header, exercise the live fact-update walkthrough, scrape
# the /v1/debug surface, check the wide-event JSONL log, shut it down
# gracefully.
# Usage: smoke.sh [path/to/serve.exe]
set -euo pipefail

SERVE="${1:-bin/serve.exe}"
LOG="$(mktemp)"
WIDELOG="$(mktemp)"

"$SERVE" --port 0 --preload company-control \
  --log-file "$WIDELOG" --log-level info --slowlog-threshold-ms 250 \
  >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG" "$WIDELOG"' EXIT

PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's#.*listening on http://[0-9.]*:\([0-9]*\).*#\1#p' "$LOG")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "smoke: server did not start" >&2
  cat "$LOG" >&2
  exit 1
fi

BODY="$(curl -fsS "http://127.0.0.1:$PORT/v1/health")"
if ! printf '%s' "$BODY" | grep -q '"status":"ok"'; then
  echo "smoke: unexpected /v1/health body: $BODY" >&2
  exit 1
fi

# the pre-/v1 paths must answer 301 + Location + Deprecation
LEGACY="$(curl -sS -D - -o /dev/null "http://127.0.0.1:$PORT/health")"
if ! printf '%s' "$LEGACY" | grep -q '^HTTP/1.1 301'; then
  echo "smoke: legacy /health did not redirect: $LEGACY" >&2
  exit 1
fi
if ! printf '%s' "$LEGACY" | grep -qi '^Location: /v1/health'; then
  echo "smoke: legacy redirect is missing Location: /v1/health" >&2
  exit 1
fi
if ! printf '%s' "$LEGACY" | grep -qi '^Deprecation: true'; then
  echo "smoke: legacy redirect is missing Deprecation: true" >&2
  exit 1
fi

METRICS="$(curl -fsS -H 'Accept: text/plain' "http://127.0.0.1:$PORT/v1/metrics")"
if ! printf '%s\n' "$METRICS" | grep -q '^# TYPE ekg_requests_total counter'; then
  echo "smoke: /v1/metrics did not negotiate Prometheus text format" >&2
  printf '%s\n' "$METRICS" >&2
  exit 1
fi
for series in ekg_requests_total ekg_chase_rounds_total \
              ekg_server_shed_total ekg_request_deadline_exceeded_total \
              ekg_chase_incremental_rounds_total ekg_chase_retracted_facts_total; do
  if ! printf '%s\n' "$METRICS" | grep -q "^$series"; then
    echo "smoke: /v1/metrics is missing mandatory series $series" >&2
    printf '%s\n' "$METRICS" >&2
    exit 1
  fi
done

# --- live fact updates: the runnable walkthrough ---------------------------
# This block executes examples/incremental_walkthrough.md against the
# preloaded company-control session (s1): control("A", "D") holds through
# B (0.30) and E (0.25); retracting E's stake drops the sum to 0.30 and
# the explanation disappears, re-adding it brings the explanation back.
BASE="http://127.0.0.1:$PORT/v1/sessions/s1"
QUERY='{"query":"control(\"A\", \"D\")"}'
STAKE='{"facts":["own(\"E\", \"D\", 0.25)"]}'

BODY="$(curl -fsS -X POST -d "$QUERY" "$BASE/explain")"
if ! printf '%s' "$BODY" | grep -q 'exercises control over'; then
  echo "smoke: control(\"A\", \"D\") not explained before retraction: $BODY" >&2
  exit 1
fi

BODY="$(curl -fsS -X DELETE -d "$STAKE" "$BASE/facts")"
if ! printf '%s' "$BODY" | grep -q '"op":"retract"'; then
  echo "smoke: retraction did not apply: $BODY" >&2
  exit 1
fi

STATUS="$(curl -sS -o /dev/null -w '%{http_code}' -X POST -d "$QUERY" "$BASE/explain")"
if [ "$STATUS" != "404" ]; then
  echo "smoke: control(\"A\", \"D\") still explained after retraction (HTTP $STATUS)" >&2
  exit 1
fi

BODY="$(curl -fsS -X POST -d "$STAKE" "$BASE/facts")"
if ! printf '%s' "$BODY" | grep -q '"op":"add"'; then
  echo "smoke: re-addition did not apply: $BODY" >&2
  exit 1
fi

BODY="$(curl -fsS -X POST -d "$QUERY" "$BASE/explain")"
if ! printf '%s' "$BODY" | grep -q 'exercises control over'; then
  echo "smoke: control(\"A\", \"D\") not restored after re-addition: $BODY" >&2
  exit 1
fi

# --- debug introspection + wide-event log ----------------------------------
BODY="$(curl -fsS "http://127.0.0.1:$PORT/v1/debug/runtime")"
for key in '"uptime_seconds"' '"gauges"' 'ekg_runtime_gc_heap_words' \
           'ekg_server_workers' '"running":true'; do
  if ! printf '%s' "$BODY" | grep -q "$key"; then
    echo "smoke: /v1/debug/runtime is missing $key: $BODY" >&2
    exit 1
  fi
done

BODY="$(curl -fsS "http://127.0.0.1:$PORT/v1/debug/sessions")"
if ! printf '%s' "$BODY" | grep -q '"id":"s1"'; then
  echo "smoke: /v1/debug/sessions does not list the preloaded session: $BODY" >&2
  exit 1
fi

STATUS="$(curl -sS -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/v1/debug/slowlog")"
if [ "$STATUS" != "200" ]; then
  echo "smoke: /v1/debug/slowlog answered HTTP $STATUS" >&2
  exit 1
fi

# the registry/snapshotter lock histograms must render in the scrape
METRICS="$(curl -fsS -H 'Accept: text/plain' "http://127.0.0.1:$PORT/v1/metrics")"
for series in 'ekg_lock_wait_seconds_count{lock="registry"}' \
              'ekg_lock_hold_seconds_count{lock="registry"}'; do
  if ! printf '%s\n' "$METRICS" | grep -qF "$series"; then
    echo "smoke: /v1/metrics is missing lock series $series" >&2
    exit 1
  fi
done

# one well-formed wide event per request: every line is a JSON object
# carrying the canonical fields
if ! [ -s "$WIDELOG" ]; then
  echo "smoke: wide-event log $WIDELOG is empty" >&2
  exit 1
fi
while IFS= read -r line; do
  case "$line" in
    "{"*"}") ;;
    *) echo "smoke: wide-event line is not a JSON object: $line" >&2; exit 1 ;;
  esac
  for key in '"trace_id":' '"endpoint":' '"status":' '"queue_wait_ms":' \
             '"chase_source":' '"gc_minor_collections":'; do
    if ! printf '%s' "$line" | grep -qF "$key"; then
      echo "smoke: wide event is missing $key: $line" >&2
      exit 1
    fi
  done
done <"$WIDELOG"
EVENTS="$(wc -l <"$WIDELOG")"
if [ "$EVENTS" -lt 5 ]; then
  echo "smoke: expected at least 5 wide events, got $EVENTS" >&2
  exit 1
fi
if ! grep -q '"endpoint":"POST /v1/sessions/:id/explain"' "$WIDELOG"; then
  echo "smoke: no wide event for the explain requests" >&2
  exit 1
fi

kill -TERM "$PID"
wait "$PID"
echo "smoke: ok (/v1/health + Prometheus /v1/metrics + legacy 301 + live fact updates + /v1/debug + $EVENTS wide events on port $PORT)"
