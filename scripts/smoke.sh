#!/usr/bin/env bash
# Server smoke test: boot the daemon on an ephemeral port, hit /health,
# scrape /metrics in Prometheus format (the mandatory series must be
# present), shut it down gracefully. Usage: smoke.sh [path/to/serve.exe]
set -euo pipefail

SERVE="${1:-bin/serve.exe}"
LOG="$(mktemp)"

"$SERVE" --port 0 --preload company-control >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's#.*listening on http://[0-9.]*:\([0-9]*\).*#\1#p' "$LOG")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "smoke: server did not start" >&2
  cat "$LOG" >&2
  exit 1
fi

BODY="$(curl -fsS "http://127.0.0.1:$PORT/health")"
if ! printf '%s' "$BODY" | grep -q '"status":"ok"'; then
  echo "smoke: unexpected /health body: $BODY" >&2
  exit 1
fi

METRICS="$(curl -fsS -H 'Accept: text/plain' "http://127.0.0.1:$PORT/metrics")"
if ! printf '%s\n' "$METRICS" | grep -q '^# TYPE ekg_requests_total counter'; then
  echo "smoke: /metrics did not negotiate Prometheus text format" >&2
  printf '%s\n' "$METRICS" >&2
  exit 1
fi
for series in ekg_requests_total ekg_chase_rounds_total; do
  if ! printf '%s\n' "$METRICS" | grep -q "^$series"; then
    echo "smoke: /metrics is missing mandatory series $series" >&2
    printf '%s\n' "$METRICS" >&2
    exit 1
  fi
done

kill -TERM "$PID"
wait "$PID"
echo "smoke: ok (/health + Prometheus /metrics on port $PORT)"
