#!/usr/bin/env bash
# Fault-injection smoke drills: boot the daemon under each injected
# fault and check the degradation contract end to end.
#
#   1. delay fault + queue-high-water 0: every session request is shed
#      with 503 + Retry-After + the "overloaded" envelope while
#      /v1/health keeps answering 200, and ekg_server_shed_total
#      advances on /v1/metrics.
#   2. slow-chase fault + X-Ekg-Deadline-Ms: the explain request comes
#      back 504 "deadline_exceeded" (retryable, with partial chase
#      stats) well before the fault would finish, and
#      ekg_request_deadline_exceeded_total advances.
#
# Usage: smoke_faults.sh [path/to/serve.exe]
set -euo pipefail

SERVE="${1:-bin/serve.exe}"

boot() {
  # boot "$LOG" serve-args... ; sets PID and PORT
  local log="$1"
  shift
  "$@" >"$log" 2>&1 &
  PID=$!
  PORT=""
  for _ in $(seq 1 50); do
    PORT="$(sed -n 's#.*listening on http://[0-9.]*:\([0-9]*\).*#\1#p' "$log")"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "smoke-faults: server did not start" >&2
    cat "$log" >&2
    exit 1
  fi
}

fail() {
  echo "smoke-faults: $1" >&2
  shift
  for extra in "$@"; do printf '%s\n' "$extra" >&2; done
  exit 1
}

LOG1="$(mktemp)"
LOG2="$(mktemp)"
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG1" "$LOG2"' EXIT

# --- drill 1: load shedding under a delay fault -----------------------------
# EKG_FAULT exercises the environment-variable path of the fault flag.
EKG_FAULT=delay:300 boot "$LOG1" \
  "$SERVE" --port 0 --domains 1 --queue-high-water 0
if ! grep -q 'fault injection active: delay' "$LOG1"; then
  fail "daemon did not report the delay fault" "$(cat "$LOG1")"
fi

SHED_HEAD="$(curl -sS -D - -o /tmp/shed_body.$$ \
  -X POST -d '{"program":"p(\"a\"). @goal(p)."}' \
  "http://127.0.0.1:$PORT/v1/sessions")"
SHED_BODY="$(cat /tmp/shed_body.$$; rm -f /tmp/shed_body.$$)"
printf '%s' "$SHED_HEAD" | grep -q '^HTTP/1.1 503' \
  || fail "session request was not shed with 503" "$SHED_HEAD"
printf '%s' "$SHED_HEAD" | grep -qi '^Retry-After:' \
  || fail "shed response is missing Retry-After" "$SHED_HEAD"
printf '%s' "$SHED_BODY" | grep -q '"code":"overloaded"' \
  || fail "shed response is missing the overloaded envelope" "$SHED_BODY"

HEALTH="$(curl -fsS "http://127.0.0.1:$PORT/v1/health")"
printf '%s' "$HEALTH" | grep -q '"status":"ok"' \
  || fail "/v1/health was not responsive while shedding" "$HEALTH"

METRICS="$(curl -fsS -H 'Accept: text/plain' "http://127.0.0.1:$PORT/v1/metrics")"
printf '%s\n' "$METRICS" | grep -q '^ekg_server_shed_total [1-9]' \
  || fail "ekg_server_shed_total did not advance" "$METRICS"

kill -TERM "$PID"
wait "$PID" || true

# --- drill 2: deadline exceeded mid-chase under a slow-chase fault ----------
boot "$LOG2" "$SERVE" --port 0 --fault slow-chase:5000 --preload company-control
if ! grep -q 'fault injection active: slow-chase' "$LOG2"; then
  fail "daemon did not report the slow-chase fault" "$(cat "$LOG2")"
fi

T0="$(date +%s%N)"
CODE="$(curl -sS -o /tmp/dl_body.$$ -w '%{http_code}' \
  -X POST -H 'X-Ekg-Deadline-Ms: 50' \
  -d '{"query":"control(\"A\", \"D\")"}' \
  "http://127.0.0.1:$PORT/v1/sessions/s1/explain")"
ELAPSED_MS=$(( ($(date +%s%N) - T0) / 1000000 ))
DL_BODY="$(cat /tmp/dl_body.$$; rm -f /tmp/dl_body.$$)"
[ "$CODE" = 504 ] || fail "expected 504 under a 50ms deadline, got $CODE" "$DL_BODY"
printf '%s' "$DL_BODY" | grep -q '"code":"deadline_exceeded"' \
  || fail "504 body is missing the deadline_exceeded envelope" "$DL_BODY"
printf '%s' "$DL_BODY" | grep -q '"retryable":true' \
  || fail "deadline_exceeded must be retryable" "$DL_BODY"
# the fault would hold the chase for 5s; the deadline must cut it short
[ "$ELAPSED_MS" -lt 2000 ] \
  || fail "504 took ${ELAPSED_MS}ms — deadline did not interrupt the chase"

METRICS="$(curl -fsS -H 'Accept: text/plain' "http://127.0.0.1:$PORT/v1/metrics")"
printf '%s\n' "$METRICS" | grep -q '^ekg_request_deadline_exceeded_total [1-9]' \
  || fail "ekg_request_deadline_exceeded_total did not advance" "$METRICS"

kill -TERM "$PID"
wait "$PID" || true

echo "smoke-faults: ok (shedding + deadline drills, ${ELAPSED_MS}ms to 504)"
