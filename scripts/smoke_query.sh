#!/usr/bin/env bash
# Query-lane smoke: boot the daemon, run a goal-directed point query
# over loopback HTTP (the magic lane must answer without materializing
# the session), assert the answer cache warms on the identical
# re-query, fetch template explanations inline (?explain=full), check
# GET explain speaks the same atom grammar and paged envelope, reject
# a malformed atom with the invalid_atom code, then apply a live fact
# update and assert the cached answers are invalidated: the retracted
# consequence disappears from a fresh (uncached) answer set and the
# re-add brings it back.  Finally scrape the ekg_query_* series.
# Usage: smoke_query.sh [path/to/serve.exe]
set -euo pipefail

SERVE="${1:-bin/serve.exe}"
LOG="$(mktemp)"

"$SERVE" --port 0 --preload company-control >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's#.*listening on http://[0-9.]*:\([0-9]*\).*#\1#p' "$LOG")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "smoke-query: server did not start" >&2
  cat "$LOG" >&2
  exit 1
fi

BASE="http://127.0.0.1:$PORT/v1/sessions/s1"
fail() {
  echo "smoke-query: $1" >&2
  shift
  for extra in "$@"; do printf '%s\n' "$extra" >&2; done
  exit 1
}

# 1. cold point query: goal-directed, uncached, and it finds the
#    aggregated consequence control("A", "D")
BODY="$(curl -fsSG --data-urlencode 'query=control("A", X)' "$BASE/query")"
printf '%s' "$BODY" | grep -q '"mode":"magic"' \
  || fail "cold query did not take the magic lane" "$BODY"
printf '%s' "$BODY" | grep -q '"cached":false' \
  || fail "cold query claims to be cached" "$BODY"
printf '%s' "$BODY" | grep -qF 'control(\"A\", \"D\")' \
  || fail "cold query is missing control(A, D)" "$BODY"
printf '%s' "$BODY" | grep -q '"next_cursor"' \
  || fail "query response is missing the paged envelope" "$BODY"

# 2. the identical re-query is served from the per-session answer cache
BODY="$(curl -fsSG --data-urlencode 'query=control("A", X)' "$BASE/query")"
printf '%s' "$BODY" | grep -q '"cached":true' \
  || fail "identical re-query was not served from the cache" "$BODY"
printf '%s' "$BODY" | grep -q '"rewrite_cached":true' \
  || fail "re-query recomputed the magic-sets rewrite" "$BODY"

# 3. inline explanations: every answer carries its template proof
BODY="$(curl -fsSG --data-urlencode 'query=control("A", X)' \
  --data-urlencode 'explain=full' "$BASE/query")"
printf '%s' "$BODY" | grep -q '"explanation"' \
  || fail "explain=full returned no explanations" "$BODY"
printf '%s' "$BODY" | grep -q 'exercises control over' \
  || fail "explanation text is not verbalized" "$BODY"

# 4. GET explain: same grammar, same paged envelope, one shared cache
BODY="$(curl -fsSG --data-urlencode 'query=control("A", "D")' "$BASE/explain")"
printf '%s' "$BODY" | grep -q '"explanations"' \
  || fail "GET explain returned no explanations" "$BODY"
printf '%s' "$BODY" | grep -q '"next_cursor"' \
  || fail "GET explain is missing the paged envelope" "$BODY"

# 5. a malformed atom answers 400 with the machine-readable code, on
#    both read endpoints
for endpoint in query explain; do
  STATUS="$(curl -sSG -o /tmp/smoke_query_body.$$ -w '%{http_code}' \
    --data-urlencode 'query=broken(' "$BASE/$endpoint")"
  [ "$STATUS" = "400" ] \
    || fail "$endpoint accepted a malformed atom (status $STATUS)"
  grep -q '"code":"invalid_atom"' /tmp/smoke_query_body.$$ \
    || fail "$endpoint did not answer invalid_atom" "$(cat /tmp/smoke_query_body.$$)"
  rm -f /tmp/smoke_query_body.$$
done

# 6. live update invalidation: retract E's stake (the sum drops below
#    the control threshold), and a fresh — not cached — answer set no
#    longer carries control(A, D); the re-add restores it
curl -fsS -X DELETE -d '{"facts":["own(\"E\", \"D\", 0.25)"]}' \
  "$BASE/facts" >/dev/null
BODY="$(curl -fsSG --data-urlencode 'query=control("A", X)' "$BASE/query")"
printf '%s' "$BODY" | grep -q '"cached":false' \
  || fail "update did not invalidate the cached answers" "$BODY"
printf '%s' "$BODY" | grep -qF 'control(\"A\", \"D\")' \
  && fail "retracted consequence still answered" "$BODY"
curl -fsS -X POST -d '{"facts":["own(\"E\", \"D\", 0.25)"]}' \
  "$BASE/facts" >/dev/null
BODY="$(curl -fsSG --data-urlencode 'query=control("A", X)' "$BASE/query")"
printf '%s' "$BODY" | grep -qF 'control(\"A\", \"D\")' \
  || fail "re-added consequence did not come back" "$BODY"

# 7. the lane's counter series are present and advanced
METRICS="$(curl -fsS -H 'Accept: text/plain' "http://127.0.0.1:$PORT/v1/metrics")"
for series in ekg_query_requests_total ekg_query_rewrite_cache_hits_total \
              ekg_query_answer_cache_hits_total ekg_query_cache_invalidations_total; do
  printf '%s\n' "$METRICS" | grep -q "^$series" \
    || fail "/v1/metrics is missing mandatory series $series" "$METRICS"
  printf '%s\n' "$METRICS" | grep -q "^$series 0$" \
    && fail "series $series never advanced" "$METRICS"
done

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "smoke-query: ok (magic lane, caches, invalidation, invalid_atom, metrics)"
