#!/usr/bin/env bash
# Restart-recovery smoke test: boot the daemon with a session store,
# create a session and materialize it with one explanation, kill the
# process, restart it on the same --store-dir, and assert that
#   (a) the session is recovered (listed dormant, original id),
#   (b) the same explanation is served again, and
#   (c) it is served WITHOUT re-running the chase — the restored
#       process answers with ekg_chase_rounds_total still at 0,
#       i.e. the materialization came from the snapshot, not a
#       recompute (the warm-restore path of ARCHITECTURE.md §4).
# Usage: smoke_recovery.sh [path/to/serve.exe]
set -euo pipefail

SERVE="${1:-bin/serve.exe}"
STORE="$(mktemp -d)"
LOG1="$(mktemp)"
LOG2="$(mktemp)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$STORE" "$LOG1" "$LOG2"
}
trap cleanup EXIT

wait_port() { # wait_port LOGFILE -> echoes port
  local port=""
  for _ in $(seq 1 50); do
    port="$(sed -n 's#.*listening on http://[0-9.]*:\([0-9]*\).*#\1#p' "$1")"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "smoke-recovery: server did not start" >&2
    cat "$1" >&2
    exit 1
  fi
  echo "$port"
}

QUERY='{"query":"control(\"A\", \"D\")"}'

# --- first lifetime: create, materialize, snapshot ------------------------
# --snapshot sync so the snapshot is durable the moment the request
# returns — the kill below needs no grace period.
"$SERVE" --port 0 --store-dir "$STORE" --snapshot sync >"$LOG1" 2>&1 &
PID=$!
PORT="$(wait_port "$LOG1")"
BASE="http://127.0.0.1:$PORT/v1"

BODY="$(curl -fsS -X POST -d '{"app":"company-control","name":"cc"}' "$BASE/sessions")"
if ! printf '%s' "$BODY" | grep -q '"id":"s1"'; then
  echo "smoke-recovery: session create did not return s1: $BODY" >&2
  exit 1
fi

FIRST="$(curl -fsS -X POST -d "$QUERY" "$BASE/sessions/s1/explain")"
if ! printf '%s' "$FIRST" | grep -q 'exercises control over'; then
  echo "smoke-recovery: explanation missing before restart: $FIRST" >&2
  exit 1
fi

if [ ! -s "$STORE/s1.snap" ]; then
  echo "smoke-recovery: no snapshot written to $STORE/s1.snap" >&2
  ls -la "$STORE" >&2
  exit 1
fi

kill -TERM "$PID"
wait "$PID"
PID=""

# --- second lifetime: recover from the store ------------------------------
"$SERVE" --port 0 --store-dir "$STORE" >"$LOG2" 2>&1 &
PID=$!
PORT="$(wait_port "$LOG2")"
BASE="http://127.0.0.1:$PORT/v1"

if ! grep -q 'recovered session s1' "$LOG2"; then
  echo "smoke-recovery: restarted daemon did not recover s1" >&2
  cat "$LOG2" >&2
  exit 1
fi

BODY="$(curl -fsS "$BASE/sessions")"
if ! printf '%s' "$BODY" | grep -q '"id":"s1"'; then
  echo "smoke-recovery: recovered session not listed: $BODY" >&2
  exit 1
fi
if ! printf '%s' "$BODY" | grep -q '"tier":"dormant"'; then
  echo "smoke-recovery: recovered session is not dormant: $BODY" >&2
  exit 1
fi

SECOND="$(curl -fsS -X POST -d "$QUERY" "$BASE/sessions/s1/explain")"
if ! printf '%s' "$SECOND" | grep -q 'exercises control over'; then
  echo "smoke-recovery: explanation missing after restart: $SECOND" >&2
  exit 1
fi

# warm restore, not re-chase: the restarted process must have run zero
# chase rounds to serve that explanation
METRICS="$(curl -fsS -H 'Accept: text/plain' "$BASE/metrics")"
ROUNDS="$(printf '%s\n' "$METRICS" | awk '/^ekg_chase_rounds_total /{print $2}')"
if [ "${ROUNDS:-missing}" != "0" ]; then
  echo "smoke-recovery: expected ekg_chase_rounds_total 0 after warm restore, got '$ROUNDS'" >&2
  exit 1
fi

# and the recovery counter must say one session came back from disk
RECOVERED="$(printf '%s\n' "$METRICS" | awk '/^ekg_store_recovered_sessions_total /{print $2}')"
if [ "${RECOVERED:-missing}" != "1" ]; then
  echo "smoke-recovery: expected ekg_store_recovered_sessions_total 1, got '$RECOVERED'" >&2
  exit 1
fi

kill -TERM "$PID"
wait "$PID"
PID=""
echo "smoke-recovery: ok (s1 recovered dormant, explanation served with 0 chase rounds)"
