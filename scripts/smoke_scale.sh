#!/usr/bin/env bash
# Scale-harness smoke: the tiny-N generate -> serve -> replay -> gate
# loop.  ekg-loadgen grows a seeded synthetic KG + CDC log, a real
# ekg-serve daemon boots with the generated directory as its root, the
# replay driver streams every CDC batch through POST|DELETE /facts
# with a concurrent reader, and the run must pass its identity gate
# (post-replay fingerprint == cold chase on the final EDB) and write a
# well-formed BENCH_scale.json.  Finally the ekg_loadgen_* series are
# asserted present in the driver's --print-metrics exposition — the
# declaration-at-startup audit for the loadgen registry.
# Usage: smoke_scale.sh [path/to/loadgen.exe] [path/to/serve.exe]
set -euo pipefail

LOADGEN="${1:-bin/loadgen.exe}"
SERVE="${2:-bin/serve.exe}"
DATA="$(mktemp -d)"
LOG="$(mktemp)"
REPLAY_OUT="$(mktemp)"
OUT="$DATA/BENCH_scale.json"
PID=""
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DATA"; rm -f "$LOG" "$REPLAY_OUT"' EXIT

fail() {
  echo "smoke-scale: $1" >&2
  shift
  for extra in "$@"; do printf '%s\n' "$extra" >&2; done
  exit 1
}

# 1. generate a tiny graph with every motif kind plus a CDC log
"$LOADGEN" generate --entities 500 --seed 7 --batches 5 --batch-size 25 \
  --out "$DATA" >/dev/null \
  || fail "generation failed"
for f in company.csv own.csv program.vada cdc.log manifest.json; do
  [ -s "$DATA/$f" ] || fail "generate did not write $f"
done

# 2. a real daemon serves the generated directory as its root
"$SERVE" --port 0 --root "$DATA" >"$LOG" 2>&1 &
PID=$!
PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's#.*listening on http://[0-9.]*:\([0-9]*\).*#\1#p' "$LOG")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || fail "server did not start" "$(cat "$LOG")"

# 3. replay the CDC log against it under one concurrent reader; the
#    driver exits non-zero if the identity gate or any request fails
"$LOADGEN" replay --data "$DATA" --url "http://127.0.0.1:$PORT" \
  --readers 1 --out "$OUT" --print-metrics >"$REPLAY_OUT" \
  || fail "replay failed" "$(cat "$REPLAY_OUT")"

# 4. the artifact records the metrics the capacity guide reads
[ -s "$OUT" ] || fail "replay did not write $OUT"
for field in '"sustained_updates_per_s"' '"p99_ms"' '"top_heap_words"' \
             '"server_fingerprint"' '"match":true'; do
  grep -q -- "$field" "$OUT" \
    || fail "BENCH_scale.json is missing $field" "$(cat "$OUT")"
done
grep -q '"match":false' "$OUT" && fail "identity gate failed" "$(cat "$OUT")"

# 5. metrics hygiene: every ekg_loadgen_* series was declared at
#    startup and renders in the exposition (traffic series advanced)
for series in ekg_loadgen_batches_total ekg_loadgen_update_requests_total \
              ekg_loadgen_facts_streamed_total ekg_loadgen_read_requests_total \
              ekg_loadgen_errors_total ekg_loadgen_shed_responses_total \
              ekg_loadgen_retries_total; do
  grep -q "^$series" "$REPLAY_OUT" \
    || fail "exposition is missing series $series" "$(cat "$REPLAY_OUT")"
done
grep -q "^ekg_loadgen_batches_total 0$" "$REPLAY_OUT" \
  && fail "batches series never advanced" "$(cat "$REPLAY_OUT")"
grep -q "^ekg_loadgen_errors_total 0$" "$REPLAY_OUT" \
  || fail "replay saw request errors" "$(cat "$REPLAY_OUT")"

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "smoke-scale: ok (generate -> serve -> replay -> identity gate, loadgen metrics)"
