(* Tests for the synthetic data generators: proof-length targeting (the
   x-axes of Figures 17 and 18 depend on it) and well-formedness. *)

open Ekg_kernel
open Ekg_engine
open Ekg_apps
open Ekg_datagen

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int

let proof_length program edb goal =
  match Chase.run program edb with
  | Error e -> Alcotest.failf "chase: %s" e
  | Ok res -> (
    match Query.ask res.db goal with
    | (f, _) :: _ -> (
      match Proof.of_fact res.db res.prov f with
      | Some p -> Proof.length p
      | None -> Alcotest.fail "goal fact has no proof")
    | [] -> Alcotest.failf "goal %s not derived" (Ekg_datalog.Atom.to_string goal))

let test_owner_chain_lengths () =
  let rng = Prng.create 11 in
  List.iter
    (fun hops ->
      let inst = Owners.chain rng ~hops in
      check int'
        (Printf.sprintf "chain of %d hops has proof length %d" hops hops)
        hops
        (proof_length Company_control.program inst.edb inst.goal))
    [ 1; 2; 5; 10; 21 ]

let test_owner_chain_variety () =
  let rng = Prng.create 12 in
  let a = Owners.chain rng ~hops:3 in
  let b = Owners.chain rng ~hops:3 in
  check bool' "distinct entities across samples" true (a.entities <> b.entities)

let test_owner_aggregated_multi_contributor () =
  let rng = Prng.create 13 in
  let inst = Owners.aggregated rng ~hops:3 ~fanout:3 in
  match Chase.run Company_control.program inst.edb with
  | Error e -> Alcotest.failf "chase: %s" e
  | Ok res -> (
    match Query.ask res.db inst.goal with
    | (f, _) :: _ -> (
      match Proof.of_fact res.db res.prov f with
      | Some p ->
        check bool' "final step aggregates several contributors" true
          (List.exists (fun (s : Proof.step) -> s.multi) p.steps)
      | None -> Alcotest.fail "no proof")
    | [] -> Alcotest.fail "joint control not derived")

let test_owner_random_network_normalized () =
  let rng = Prng.create 14 in
  let edb = Owners.random_network rng ~entities:12 ~density:0.4 in
  (* no entity may be over-owned *)
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (a : Ekg_datalog.Atom.t) ->
      if a.pred = "own" then begin
        match a.args with
        | [ _; Ekg_datalog.Term.Cst y; Ekg_datalog.Term.Cst s ] ->
          let key = Value.to_display y in
          let cur = Option.value ~default:0. (Hashtbl.find_opt totals key) in
          Hashtbl.replace totals key (cur +. Value.as_float s)
        | _ -> ()
      end)
    edb;
  Hashtbl.iter
    (fun y total ->
      if total > 1.0 +. 1e-9 then Alcotest.failf "%s is over-owned: %f" y total)
    totals;
  (* the network must still run through the chase *)
  match Chase.run Company_control.program edb with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "random network does not chase: %s" e

let test_simple_cascade_lengths () =
  let rng = Prng.create 15 in
  List.iter
    (fun depth ->
      let inst = Debts.simple_cascade rng ~depth in
      check int'
        (Printf.sprintf "simple cascade depth %d" depth)
        ((2 * depth) + 1)
        (proof_length Stress_test.simple_program inst.edb inst.goal))
    [ 0; 1; 2; 4; 8 ]

let test_dual_cascade_lengths () =
  let rng = Prng.create 16 in
  List.iter
    (fun depth ->
      let inst = Debts.dual_cascade rng ~depth in
      check int'
        (Printf.sprintf "dual cascade depth %d" depth)
        ((3 * depth) + 1)
        (proof_length Stress_test.program inst.edb inst.goal))
    [ 0; 1; 3; 7 ]

let test_single_channel_lengths () =
  let rng = Prng.create 17 in
  List.iter
    (fun long ->
      let inst = Debts.single_channel_cascade rng ~depth:3 ~long in
      check int'
        (Printf.sprintf "single channel (long=%b)" long)
        7
        (proof_length Stress_test.program inst.edb inst.goal))
    [ true; false ]

let test_multi_debt_cascade () =
  let rng = Prng.create 18 in
  let inst = Debts.multi_debt_cascade rng ~depth:2 ~debts_per_hop:3 in
  match Chase.run Stress_test.simple_program inst.edb with
  | Error e -> Alcotest.failf "chase: %s" e
  | Ok res -> (
    match Query.ask res.db inst.goal with
    | (f, _) :: _ ->
      let p = Option.get (Proof.of_fact res.db res.prov f) in
      check int' "length unchanged by extra debts" 5 (Proof.length p);
      check bool' "aggregation steps are multi" true
        (List.exists (fun (s : Proof.step) -> s.multi) p.steps)
    | [] -> Alcotest.fail "cascade target not derived")

let test_generators_deterministic () =
  let a = Debts.dual_cascade (Prng.create 99) ~depth:3 in
  let b = Debts.dual_cascade (Prng.create 99) ~depth:3 in
  check bool' "same seed, same instance" true (a.edb = b.edb)

let test_generator_guards () =
  Alcotest.check_raises "chain hops >= 1"
    (Invalid_argument "Owners.chain: hops must be >= 1") (fun () ->
      ignore (Owners.chain (Prng.create 1) ~hops:0));
  Alcotest.check_raises "fanout >= 2"
    (Invalid_argument "Owners.aggregated: fanout must be >= 2") (fun () ->
      ignore (Owners.aggregated (Prng.create 1) ~hops:3 ~fanout:1))

(* --- registry-scale generator (Kg) and CDC streams (Cdc) ------------------- *)

let db_fingerprint atoms =
  let db = Database.create () in
  List.iter
    (fun atom ->
      match Database.add_atom db atom with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "add_atom: %s" e)
    atoms;
  Database.fingerprint db

let small_kg_config =
  {
    (Kg.default ~entities:120) with
    Kg.seed = 42;
    chains = 2;
    cycles = 2;
    diamonds = 2;
    close_links = 2;
  }

let test_kg_deterministic () =
  let _, a = Kg.atoms small_kg_config in
  let _, b = Kg.atoms small_kg_config in
  check bool' "same config, same fingerprint" true
    (db_fingerprint a = db_fingerprint b);
  let _, c = Kg.atoms { small_kg_config with Kg.seed = 43 } in
  check bool' "different seed, different fingerprint" false
    (db_fingerprint a = db_fingerprint c)

let test_kg_power_law () =
  (* the sampler's survival law is P(D ≥ d | active) = d^(1-α), so the
     empirical tail at d = 4 recovers α without fitting machinery *)
  let cfg = { (Kg.default ~entities:4000) with Kg.seed = 7 } in
  let t = Kg.generate cfg ~emit:(fun _ -> ()) in
  let degrees = Array.to_list t.Kg.core_out_degree in
  let active = List.filter (fun d -> d >= 1) degrees in
  let n_active = List.length active in
  check bool' "enough active entities to estimate from" true (n_active > 500);
  let tail = List.length (List.filter (fun d -> d >= 4) active) in
  let survival = float_of_int tail /. float_of_int n_active in
  let alpha_hat = 1.0 -. (log survival /. log 4.0) in
  check bool'
    (Printf.sprintf "estimated exponent %.2f within 0.3 of %.2f" alpha_hat
       cfg.Kg.exponent)
    true
    (Float.abs (alpha_hat -. cfg.Kg.exponent) < 0.3);
  let mean =
    float_of_int (List.fold_left ( + ) 0 degrees)
    /. float_of_int (List.length degrees)
  in
  check bool'
    (Printf.sprintf "mean degree %.2f within 20%% of %.2f" mean
       cfg.Kg.avg_out_degree)
    true
    (Float.abs (mean -. cfg.Kg.avg_out_degree) /. cfg.Kg.avg_out_degree < 0.2)

let small_cdc kg_cfg ~seed cdc_cfg =
  let kg = Kg.generate kg_cfg ~emit:(fun _ -> ()) in
  Cdc.generate (Prng.create seed) ~kg cdc_cfg

let test_cdc_retract_validity () =
  let log =
    small_cdc small_kg_config ~seed:5
      { Cdc.default_config with batches = 8; batch_size = 40 }
  in
  (match Cdc.validate log with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  (* stream shares live on a grid disjoint from the base EDB's, so no
     retract can name a base fact even by accident *)
  let _, base = Kg.atoms small_kg_config in
  let base_keys = Hashtbl.create 256 in
  List.iter
    (fun a -> Hashtbl.replace base_keys (Ekg_datalog.Atom.to_string a) ())
    base;
  List.iter
    (fun (b : Cdc.batch) ->
      check bool' "batch 0 retracts nothing" true
        (b.seq <> 0 || b.retracts = []);
      List.iter
        (fun r ->
          check bool' "retract never names a base fact" false
            (Hashtbl.mem base_keys (Ekg_datalog.Atom.to_string r)))
        b.retracts)
    log

let test_cdc_serialization_roundtrip () =
  let log =
    small_cdc small_kg_config ~seed:9
      { Cdc.default_config with batches = 5; batch_size = 25 }
  in
  match Cdc.of_string (Cdc.to_string log) with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok log' ->
    check bool' "to_string/of_string round-trip" true
      (Cdc.to_string log = Cdc.to_string log')

let test_kg_csv_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ekg_kg_csv_%d" (Unix.getpid ()))
  in
  let _ = Kg.to_csv_dir small_kg_config ~dir in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      match Io.load_directory dir with
      | Error e -> Alcotest.failf "load_directory: %s" e
      | Ok loaded ->
        let _, direct = Kg.atoms small_kg_config in
        check bool' "CSV round-trip preserves the EDB fingerprint" true
          (db_fingerprint loaded = db_fingerprint direct))

(* the tentpole invariant: replaying the CDC log through incremental
   add/retract maintenance lands on the same materialization as a cold
   chase over the final EDB — fingerprint equality, any interleaving *)
let prop_replay_equals_cold_chase =
  QCheck2.Test.make ~name:"CDC replay = cold chase on the final EDB" ~count:25
    QCheck2.Gen.(
      triple (int_range 0 1000) (int_range 10 60) (int_range 1 5))
    (fun (seed, entities, batches) ->
      let kg_cfg =
        {
          (Kg.default ~entities) with
          Kg.seed;
          chains = 1;
          cycles = 1;
          diamonds = 1;
          close_links = 1;
        }
      in
      let kg, base = Kg.atoms kg_cfg in
      let log =
        Cdc.generate
          (Prng.create (seed + 7919))
          ~kg
          { Cdc.default_config with batches; batch_size = 10 }
      in
      let program = Company_control.program in
      let replayed =
        match Chase.run program base with
        | Error e -> Alcotest.failf "base chase: %s" e
        | Ok res ->
          List.fold_left
            (fun res (b : Cdc.batch) ->
              let res =
                if b.retracts = [] then res
                else
                  match Chase.retract_facts program res b.retracts with
                  | Ok (res, _) -> res
                  | Error e ->
                    Alcotest.failf "retract (batch %d): %s" b.seq
                      (Chase.error_to_string e)
              in
              if b.adds = [] then res
              else
                match Chase.add_facts program res b.adds with
                | Ok (res, _) -> res
                | Error e ->
                  Alcotest.failf "add (batch %d): %s" b.seq
                    (Chase.error_to_string e))
            res log
      in
      let cold =
        match Chase.run program (Cdc.final_edb ~base log) with
        | Error e -> Alcotest.failf "final chase: %s" e
        | Ok res -> res
      in
      Database.fingerprint replayed.Chase.db = Database.fingerprint cold.Chase.db)

let scale_qsuite = List.map QCheck_alcotest.to_alcotest [ prop_replay_equals_cold_chase ]

let () =
  Alcotest.run "datagen"
    [
      ( "owners",
        [
          Alcotest.test_case "chain lengths" `Quick test_owner_chain_lengths;
          Alcotest.test_case "variety" `Quick test_owner_chain_variety;
          Alcotest.test_case "aggregated multi-contributor" `Quick
            test_owner_aggregated_multi_contributor;
          Alcotest.test_case "random network normalized" `Quick
            test_owner_random_network_normalized;
        ] );
      ( "debts",
        [
          Alcotest.test_case "simple cascade lengths" `Quick test_simple_cascade_lengths;
          Alcotest.test_case "dual cascade lengths" `Quick test_dual_cascade_lengths;
          Alcotest.test_case "single channel lengths" `Quick test_single_channel_lengths;
          Alcotest.test_case "multi-debt cascade" `Quick test_multi_debt_cascade;
        ] );
      ( "participations",
        [
          Alcotest.test_case "chain lengths" `Quick (fun () ->
              let rng = Prng.create 19 in
              List.iter
                (fun hops ->
                  let inst = Participations.chain rng ~hops in
                  check int'
                    (Printf.sprintf "chain of %d hops" hops)
                    (hops + 1)
                    (proof_length Close_link.program inst.edb inst.goal))
                [ 1; 2; 4; 5 ]);
          Alcotest.test_case "noise does not break the link" `Quick (fun () ->
              let rng = Prng.create 20 in
              let inst = Participations.with_noise rng ~hops:3 ~noise_edges:5 in
              check int' "length unchanged" 4
                (proof_length Close_link.program inst.edb inst.goal));
          Alcotest.test_case "too-deep chain rejected" `Quick (fun () ->
              match Participations.chain (Prng.create 21) ~hops:200 with
              | exception Invalid_argument _ -> ()
              | _ -> Alcotest.fail "200-hop chain needs shares above the 99% cap");
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "guards" `Quick test_generator_guards;
        ] );
      ( "scale",
        [
          Alcotest.test_case "kg deterministic by fingerprint" `Quick
            test_kg_deterministic;
          Alcotest.test_case "power-law exponent within tolerance" `Quick
            test_kg_power_law;
          Alcotest.test_case "cdc retract validity" `Quick
            test_cdc_retract_validity;
          Alcotest.test_case "cdc serialization round-trip" `Quick
            test_cdc_serialization_roundtrip;
          Alcotest.test_case "csv round-trip" `Quick test_kg_csv_roundtrip;
        ]
        @ scale_qsuite );
    ]
