(* Tests for the chase engine: fact store, body matching, fixpoint
   semantics (set semantics, monotonic aggregation with supersession,
   stratified negation, existential heads with isomorphism preemption),
   provenance well-formedness and proof extraction. *)

open Ekg_kernel
open Ekg_datalog
open Ekg_engine

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int
let string' = Alcotest.string

let parse_exn src =
  match Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse: %s" e

let run_exn src =
  let { Parser.program; facts } = parse_exn src in
  match Chase.run program facts with
  | Ok r -> r
  | Error e -> Alcotest.failf "chase: %s" e

let actives res pred =
  Database.active res.Chase.db pred |> List.map Fact.to_string |> List.sort String.compare

(* --- database -------------------------------------------------------------- *)

let test_database_dedup () =
  let db = Database.create () in
  let t = [| Value.str "a"; Value.int 1 |] in
  (match Database.add db "p" t with
  | `Added f -> check int' "first id" 0 f.id
  | `Existing _ -> Alcotest.fail "fresh tuple reported existing");
  (match Database.add db "p" [| Value.str "a"; Value.int 1 |] with
  | `Existing f -> check int' "same id" 0 f.id
  | `Added _ -> Alcotest.fail "duplicate tuple added twice");
  check int' "size counts distinct tuples" 1 (Database.size db)

let test_database_numeric_key_equality () =
  let db = Database.create () in
  ignore (Database.add db "p" [| Value.int 2 |]);
  match Database.add db "p" [| Value.num 2.0 |] with
  | `Existing _ -> ()
  | `Added _ -> Alcotest.fail "Int 2 and Num 2.0 should be the same tuple"

let test_database_deactivation () =
  let db = Database.create () in
  let f = match Database.add db "p" [| Value.int 1 |] with `Added f -> f | `Existing f -> f in
  check int' "active before" 1 (List.length (Database.active db "p"));
  Database.deactivate db f.id;
  check int' "inactive after" 0 (List.length (Database.active db "p"));
  check int' "still addressable" f.id (Database.fact db f.id).id;
  check int' "still listed among all" 1 (List.length (Database.all_of_pred db "p"))

let test_database_matching () =
  let db = Database.create () in
  ignore (Database.add db "own" [| Value.str "a"; Value.str "b"; Value.num 0.6 |]);
  ignore (Database.add db "own" [| Value.str "a"; Value.str "c"; Value.num 0.3 |]);
  let pattern = Atom.make "own" [ Term.str "a"; Term.var "Y"; Term.var "S" ] in
  check int' "two matches" 2 (List.length (Database.matching db pattern Subst.empty));
  let bound = Subst.bind Subst.empty "Y" (Value.str "b") in
  check int' "one match under binding" 1 (List.length (Database.matching db pattern bound))

(* --- columnar storage and hash indexes -------------------------------------- *)

let test_database_columnar_layout () =
  let db = Database.create () in
  ignore (Database.add db "e" [| Value.str "a"; Value.str "b" |]);
  ignore (Database.add db "e" [| Value.str "b"; Value.str "c" |]);
  ignore (Database.add db "e" [| Value.str "a"; Value.str "c" |]);
  let sym = Option.get (Database.pred_sym db "e") in
  let g = Option.get (Database.Cols.find db ~sym ~arity:2) in
  check int' "three rows" 3 (Database.Cols.rows g);
  (* rows are insertion order, columns hold interned ids *)
  for row = 0 to 2 do
    check int' "row maps to fact id" row (Database.Cols.fact_id g row)
  done;
  let a = Database.value_id db (Value.str "a") in
  check bool' "interned" true (a >= 0);
  check int' "col(0,0) = a" a (Database.Cols.col g 0 0);
  check int' "col(0,2) = a" a (Database.Cols.col g 0 2);
  check bool' "value round-trips" true
    (Value.equal (Database.value_of_id db a) (Value.str "a"));
  check int' "unseen value has no id" (-1)
    (Database.value_id db (Value.str "zebra"));
  (* Int/Num interning follows Value.equal, like tuple dedup *)
  ignore (Database.add db "n" [| Value.int 2 |]);
  check int' "Int 2 and Num 2.0 share an id"
    (Database.value_id db (Value.int 2))
    (Database.value_id db (Value.num 2.0))

let test_database_index_probe () =
  let db = Database.create () in
  ignore (Database.add db "e" [| Value.str "a"; Value.str "b" |]);
  ignore (Database.add db "e" [| Value.str "b"; Value.str "c" |]);
  ignore (Database.add db "e" [| Value.str "a"; Value.str "c" |]);
  let sym = Option.get (Database.pred_sym db "e") in
  let g = Option.get (Database.Cols.find db ~sym ~arity:2) in
  check bool' "no index yet" true (Database.probe g ~mask:1 ~hash:0 = None);
  check int' "index build covers all rows" 3
    (Database.ensure_index db ~sym ~arity:2 ~mask:1);
  check int' "rebuild is incremental (no new rows)" 0
    (Database.ensure_index db ~sym ~arity:2 ~mask:1);
  let hash_of v = Database.key_hash_add 0 (Database.value_id db v) in
  let bucket v =
    match Database.probe g ~mask:1 ~hash:(hash_of v) with
    | Some b -> List.init (Intvec.length b) (Intvec.get b)
    | None -> Alcotest.fail "fresh index did not answer"
  in
  check bool' "a-bucket holds rows 0 and 2, ascending" true
    (bucket (Value.str "a") = [ 0; 2 ]);
  check bool' "b-bucket holds row 1" true (bucket (Value.str "b") = [ 1 ]);
  (* handles: same answers, resolved once *)
  (match Database.index_handle g ~mask:1 with
  | None -> Alcotest.fail "fresh index has no handle"
  | Some h ->
    check int' "handle probe agrees" 2
      (Intvec.length (Database.probe_handle h ~hash:(hash_of (Value.str "a")))));
  (* staleness: a new row invalidates probes until re-ensured *)
  ignore (Database.add db "e" [| Value.str "c"; Value.str "d" |]);
  check bool' "stale index refuses to answer" true
    (Database.probe g ~mask:1 ~hash:(hash_of (Value.str "a")) = None);
  check bool' "stale index yields no handle" true
    (Database.index_handle g ~mask:1 = None);
  check int' "extension indexes only the new row" 1
    (Database.ensure_index db ~sym ~arity:2 ~mask:1);
  check bool' "fresh again" true
    (Database.probe g ~mask:1 ~hash:(hash_of (Value.str "a")) <> None);
  (* multi-column mask keys on both columns *)
  ignore (Database.ensure_index db ~sym ~arity:2 ~mask:3);
  let h2 =
    Database.key_hash_add
      (Database.key_hash_add 0 (Database.value_id db (Value.str "a")))
      (Database.value_id db (Value.str "c"))
  in
  (match Database.probe g ~mask:3 ~hash:h2 with
  | Some b -> check int' "(a,c) bucket is row 2" 2 (Intvec.get b 0)
  | None -> Alcotest.fail "two-column index did not answer")

let test_database_all_active () =
  let db = Database.create () in
  let f =
    match Database.add db "p" [| Value.int 1 |] with
    | `Added f -> f
    | `Existing f -> f
  in
  check bool' "all active initially" true (Database.all_active db);
  Database.deactivate db f.id;
  check bool' "not all active after deactivate" false (Database.all_active db);
  Database.reactivate db f.id;
  check bool' "all active after reactivate" true (Database.all_active db)

(* --- plain chase ------------------------------------------------------------- *)

let test_chase_transitive_closure () =
  let res =
    run_exn
      {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
e("a", "b"). e("b", "c"). e("c", "d").
|}
  in
  check int' "six paths" 6 (List.length (Database.active res.db "path"))

let test_chase_set_semantics () =
  let res =
    run_exn
      {|
e(X, Y) -> conn(X, Y).
e(Y, X) -> conn(X, Y).
@goal(conn).
e("a", "b"). e("b", "a").
|}
  in
  (* conn(a,b) and conn(b,a), each derivable twice, stored once *)
  check int' "no duplicates" 2 (List.length (Database.active res.db "conn"))

let test_chase_joins_and_conditions () =
  let res =
    run_exn
      {|
own(X, Y, S), S > 0.5 -> majority(X, Y).
@goal(majority).
own("a", "b", 0.6). own("a", "c", 0.5). own("b", "c", 0.51).
|}
  in
  check bool' "only strict majorities" true
    (actives res "majority" = [ {|majority("a", "b")|}; {|majority("b", "c")|} ])

let test_chase_arithmetic_assignment () =
  let res =
    run_exn
      {|
pair(X, A, B), S = A + B * 2 -> total(X, S).
@goal(total).
pair("k", 1, 3).
|}
  in
  check bool' "1 + 3*2 = 7" true (actives res "total" = [ {|total("k", 7)|} ])

(* --- aggregation --------------------------------------------------------------- *)

let test_chase_sum_groups () =
  let res =
    run_exn
      {|
sale(Shop, Amount), T = sum(Amount) -> revenue(Shop, T).
@goal(revenue).
sale("x", 10). sale("x", 20). sale("y", 5).
|}
  in
  check bool' "grouped sums" true
    (actives res "revenue" = [ {|revenue("x", 30)|}; {|revenue("y", 5)|} ])

let test_chase_agg_functions () =
  let res =
    run_exn
      {|
m(K, V), R = max(V) -> maxv(K, R).
m(K, V), R = min(V) -> minv(K, R).
m(K, V), R = count(V) -> cnt(K, R).
m(K, V), R = prod(V) -> prd(K, R).
@goal(maxv).
m("k", 2). m("k", 3). m("k", 4).
|}
  in
  check bool' "max" true (actives res "maxv" = [ {|maxv("k", 4)|} ]);
  check bool' "min" true (actives res "minv" = [ {|minv("k", 2)|} ]);
  check bool' "count" true (actives res "cnt" = [ {|cnt("k", 3)|} ]);
  check bool' "prod" true (actives res "prd" = [ {|prd("k", 24)|} ])

let test_chase_monotonic_aggregation_supersedes () =
  (* C's exposure grows across rounds: first A's 3, then (once B has
     defaulted) also B's 8.  Only the final aggregate stays active; the
     stale one is superseded but kept for provenance. *)
  let res =
    run_exn
      {|
alpha: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).
beta:  default(D), debts(D, C, V), E = sum(V) -> risk(C, E).
gamma: hasCapital(C, P2), risk(C, E), P2 < E -> default(C).
@goal(default).
shock("A", 6). hasCapital("A", 5). hasCapital("B", 2). hasCapital("C", 10).
debts("A", "B", 7). debts("A", "C", 3). debts("B", "C", 8).
|}
  in
  check bool' "all defaults derived" true
    (actives res "default" = [ {|default("A")|}; {|default("B")|}; {|default("C")|} ]);
  check bool' "only final aggregates active" true
    (actives res "risk" = [ {|risk("B", 7)|}; {|risk("C", 11)|} ]);
  (* the superseded risk("C", 3) is still in the chase graph *)
  let all_risk = Database.all_of_pred res.db "risk" |> List.map Fact.to_string in
  check bool' "stale aggregate kept for provenance" true
    (List.mem {|risk("C", 3)|} all_risk);
  let stale =
    Database.all_of_pred res.db "risk"
    |> List.find (fun f -> Fact.to_string f = {|risk("C", 3)|})
  in
  (match Provenance.superseded_by res.prov stale.id with
  | Some newer ->
    check string' "superseded by the full sum" {|risk("C", 11)|}
      (Fact.to_string (Database.fact res.db newer))
  | None -> Alcotest.fail "stale aggregate not marked superseded")

let test_chase_agg_condition_on_result () =
  let res =
    run_exn
      {|
own(X, Y, S), TS = sum(S), TS > 0.5 -> jointly(X, Y).
@goal(jointly).
own("a", "t", 0.3). own("a", "t", 0.3). own("b", "t", 0.3).
|}
  in
  (* the two 0.3 facts for "a" collapse under set semantics: 0.3 each *)
  check bool' "set semantics dedups equal tuples" true (actives res "jointly" = [])

let test_chase_agg_multi_contributors () =
  let res =
    run_exn
      {|
own(X, Y, S), TS = sum(S), TS > 0.5 -> jointly(X, Y).
@goal(jointly).
own("a", "t", 0.3). own("a", "t", 0.31). own("b", "t", 0.3).
|}
  in
  check bool' "0.3 + 0.31 > 0.5" true (actives res "jointly" = [ {|jointly("a", "t")|} ]);
  let f = List.hd (Database.active res.db "jointly") in
  match Provenance.derivation res.prov f.id with
  | Some d -> check int' "two contributors recorded" 2 (List.length d.contributors)
  | None -> Alcotest.fail "no derivation for aggregated fact"

let test_chase_agg_body_vars_in_deferred_condition () =
  (* σ7-style: the deferred condition mentions a body variable (P)
     constant across the group *)
  let res =
    run_exn
      {|
exposure(C, E), capital(C, P), L = sum(E), L > P -> fail(C).
@goal(fail).
exposure("b", 4). exposure("b", 3). capital("b", 6).
exposure("s", 2). capital("s", 6).
|}
  in
  check bool' "4+3 > 6 fails b only" true (actives res "fail" = [ {|fail("b")|} ])

(* --- negation -------------------------------------------------------------------- *)

let test_chase_stratified_negation () =
  let res =
    run_exn
      {|
node(X), not hasEdge(X) -> isolated(X).
edge(X, Y) -> hasEdge(X).
@goal(isolated).
node("a"). node("b"). edge("a", "c").
|}
  in
  check bool' "only b isolated" true (actives res "isolated" = [ {|isolated("b")|} ])

let test_chase_three_strata () =
  (* negation over negation: needs three strata *)
  let res =
    run_exn
      {|
edge(X, Y) -> linked(X).
node(X), not linked(X) -> isolated(X).
node(X), not isolated(X) -> connected(X).
@goal(connected).
node("a"). node("b"). edge("a", "z").
|}
  in
  check bool' "a connected" true (actives res "connected" = [ {|connected("a")|} ]);
  check bool' "b isolated" true (actives res "isolated" = [ {|isolated("b")|} ])

let test_chase_unstratifiable_rejected () =
  let { Parser.program; facts } =
    parse_exn {|
p(X), not q(X) -> q(X).
@goal(q).
p("a").
|}
  in
  match Chase.run program facts with
  | Error msg ->
    check bool' "mentions stratification" true
      (Textutil.contains_word msg "stratifiable"
      || Textutil.contains_word msg "negation")
  | Ok _ -> Alcotest.fail "recursion through negation accepted"

(* --- existentials ------------------------------------------------------------------ *)

let test_chase_existential_nulls () =
  let res =
    run_exn {|
person(X) -> hasParent(X, Y).
@goal(hasParent).
person("a").
|}
  in
  match Database.active res.db "hasParent" with
  | [ f ] -> check bool' "second arg is a null" true (Value.is_null (Fact.arg f 1))
  | other -> Alcotest.failf "expected one fact, got %d" (List.length other)

let test_chase_isomorphism_preemption () =
  (* the recursive existential would run forever without preemption *)
  let res =
    run_exn
      {|
person(X) -> hasParent(X, Y).
hasParent(X, Y) -> person(Y).
@goal(hasParent).
person("a").
|}
  in
  (* a gets a parent ν0; ν0 is a person; ν0's parent is pre-empted by…
     itself being isomorphic to the existing hasParent(ν0, ·)? No: the
     preemption is per non-existential prefix, so hasParent(ν0, ν1) is
     blocked only when a hasParent(ν0, _) already exists.  The chain
     stops after one extra level. *)
  check bool' "terminates" true (res.rounds < 100);
  check bool' "bounded materialization" true (Database.size res.db < 20)

let test_chase_existential_satisfied_by_data () =
  let res =
    run_exn
      {|
person(X) -> hasParent(X, Y).
@goal(hasParent).
person("a"). hasParent("a", "b").
|}
  in
  (* a parent is already known: the chase step is pre-empted *)
  check int' "no null introduced" 1 (List.length (Database.active res.db "hasParent"))

(* --- termination guard --------------------------------------------------------------- *)

let test_chase_max_rounds () =
  let { Parser.program; facts } =
    parse_exn
      {|
n(X), Y = X + 1, Y < 1000000 -> n(Y).
@goal(n).
n(0).
|}
  in
  match Chase.run ~max_rounds:50 program facts with
  | Error msg -> check bool' "guard fired" true (Textutil.contains_word msg "50")
  | Ok _ -> Alcotest.fail "expected max_rounds error"

(* --- provenance and proofs ------------------------------------------------------------- *)

let example_economy =
  {|
alpha: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).
beta:  default(D), debts(D, C, V), E = sum(V) -> risk(C, E).
gamma: hasCapital(C, P2), risk(C, E), P2 < E -> default(C).
@goal(default).
shock("A", 6). hasCapital("A", 5). hasCapital("B", 2). hasCapital("C", 10).
debts("A", "B", 7). debts("B", "C", 2). debts("B", "C", 9).
|}

let test_provenance_well_formed () =
  let res = run_exn example_economy in
  List.iter
    (fun id ->
      match Provenance.derivation res.prov id with
      | None -> Alcotest.fail "derived id without derivation"
      | Some d ->
        (* premises must exist and precede the conclusion *)
        List.iter
          (fun p ->
            if p >= id then Alcotest.failf "premise %d does not precede fact %d" p id)
          d.premises)
    (Provenance.derived_ids res.prov)

let test_proof_tau_order () =
  let res = run_exn example_economy in
  let f =
    match Query.parse_and_ask res.db {|default("C")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "default(C) missing"
  in
  match Proof.of_fact res.db res.prov f with
  | None -> Alcotest.fail "no proof"
  | Some proof ->
    check bool' "tau = alpha beta gamma beta gamma" true
      (Proof.rule_sequence proof = [ "alpha"; "beta"; "gamma"; "beta"; "gamma" ]);
    check int' "five chase steps" 5 (Proof.length proof);
    let multi_steps = List.filter (fun (s : Proof.step) -> s.multi) proof.steps in
    check int' "exactly one multi-contributor step" 1 (List.length multi_steps);
    (* premises precede conclusions in tau *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (s : Proof.step) ->
        List.iter
          (fun (p : Fact.t) ->
            match Provenance.derivation res.prov p.id with
            | Some _ when not (Hashtbl.mem seen p.id) ->
              Alcotest.fail "premise appears after its use"
            | _ -> ())
          s.premises;
        Hashtbl.replace seen s.fact.id ())
      proof.steps

let test_proof_constants () =
  let res = run_exn example_economy in
  let f =
    match Query.parse_and_ask res.db {|default("C")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "default(C) missing"
  in
  let proof = Option.get (Proof.of_fact res.db res.prov f) in
  let constants = List.map Value.to_display (Proof.constants proof) in
  List.iter
    (fun c ->
      check bool' ("proof mentions " ^ c) true (List.mem c constants))
    [ "A"; "B"; "C"; "6"; "5"; "2"; "10"; "7"; "9"; "11" ]

let test_alternative_derivations_recorded () =
  (* the goal is derivable both through a chain and directly; the
     later-arriving derivation is kept as an alternative *)
  let res =
    run_exn
      {|
chain1: a(X) -> m(X).
chain2: m(X) -> goal(X).
direct: a(X), z(X) -> goal(X).
@goal(goal).
a("k"). z("k").
|}
  in
  let f =
    match Query.parse_and_ask res.db {|goal("k")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "goal missing"
  in
  check bool' "at least two derivations" true
    (List.length (Provenance.alternatives res.prov f.id) >= 2)

let test_shortest_proof_selection () =
  (* the goal has a wide 5-step derivation (four parallel w-facts feed
     [direct]) and a narrow 3-step chain.  The wide one completes a
     round earlier — rounds match against the pre-round database, so
     the chain needs three rounds while the w-facts all land in round
     one — making it the primary; shortest-proof selection must then
     recover the chain *)
  let res =
    run_exn
      {|
chain1: a(X) -> m1(X).
chain2: m1(X) -> m2(X).
chain3: m2(X) -> goal(X).
w1: a(X) -> wa(X).
w2: a(X) -> wb(X).
w3: a(X) -> wc(X).
w4: a(X) -> wd(X).
direct: wa(X), wb(X), wc(X), wd(X) -> goal(X).
@goal(goal).
a("k").
|}
  in
  let f =
    match Query.parse_and_ask res.db {|goal("k")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "goal missing"
  in
  let primary = Option.get (Proof.of_fact res.db res.prov f) in
  let shortest = Option.get (Proof.shortest_of_fact res.db res.prov f) in
  check int' "primary is the wide derivation" 5 (Proof.length primary);
  check bool' "primary uses the direct rule" true
    (List.mem "direct" (Proof.rule_sequence primary));
  check int' "shortest follows the chain" 3 (Proof.length shortest);
  check bool' "shortest is the chain" true
    (Proof.rule_sequence shortest = [ "chain1"; "chain2"; "chain3" ])

let test_shortest_equals_primary_when_unique () =
  let res = run_exn example_economy in
  let f =
    match Query.parse_and_ask res.db {|default("C")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "default(C) missing"
  in
  let primary = Option.get (Proof.of_fact res.db res.prov f) in
  let shortest = Option.get (Proof.shortest_of_fact res.db res.prov f) in
  check bool' "identical when derivations are unique" true
    (Proof.rule_sequence primary = Proof.rule_sequence shortest)

let test_proof_truncate () =
  let res = run_exn example_economy in
  let f =
    match Query.parse_and_ask res.db {|default("C")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "default(C) missing"
  in
  let proof = Option.get (Proof.of_fact res.db res.prov f) in
  (* horizon 2: keep default(C) <- risk(C,11) <- default(B); default(B)'s
     own derivation (risk(B,7), default(A)) falls outside *)
  let truncated, assumed = Proof.truncate proof ~horizon:2 in
  check bool' "kept the last two hops" true
    (Proof.rule_sequence truncated = [ "beta"; "gamma" ]);
  check bool' "default(B) is assumed" true
    (List.exists (fun (a : Fact.t) -> Fact.to_string a = {|default("B")|}) assumed);
  (* a wide horizon is the identity *)
  let full, none = Proof.truncate proof ~horizon:100 in
  check int' "identity beyond depth" (Proof.length proof) (Proof.length full);
  check bool' "no assumptions" true (none = []);
  Alcotest.check_raises "horizon must be positive"
    (Invalid_argument "Proof.truncate: horizon must be >= 1") (fun () ->
      ignore (Proof.truncate proof ~horizon:0))

let test_proof_edb_fact_has_none () =
  let res = run_exn example_economy in
  let f =
    match Query.parse_and_ask res.db {|shock("A", 6)|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "shock missing"
  in
  check bool' "EDB facts have no proof" true (Proof.of_fact res.db res.prov f = None)

(* --- negative constraints ------------------------------------------------------------ *)

let test_constraint_violation () =
  let { Parser.program; facts } =
    parse_exn
      {|
r1: employee(X) -> person(X).
c1: person(X), robot(X) -> false.
@goal(person).
employee("ada"). robot("ada").
|}
  in
  match Chase.run program facts with
  | Error msg ->
    check bool' "names the constraint" true (Textutil.contains_word msg "c1");
    check bool' "names a triggering fact" true (Textutil.contains_word msg "robot")
  | Ok _ -> Alcotest.fail "violated constraint accepted"

let test_constraint_satisfied () =
  let { Parser.program; facts } =
    parse_exn
      {|
r1: employee(X) -> person(X).
c1: person(X), robot(X) -> false.
@goal(person).
employee("ada"). robot("hal").
|}
  in
  match Chase.run program facts with
  | Ok res -> check int' "person derived" 1 (List.length (Database.active res.db "person"))
  | Error e -> Alcotest.failf "consistent instance rejected: %s" e

let test_constraint_with_negation () =
  let { Parser.program; facts } =
    parse_exn
      {|
g: approved(X), not reviewed(X) -> false.
r: request(X) -> pending(X).
@goal(pending).
request("a"). approved("a").
|}
  in
  match Chase.run program facts with
  | Error msg -> check bool' "negation-guarded constraint fires" true (Textutil.contains_word msg "g")
  | Ok _ -> Alcotest.fail "unreviewed approval accepted"

(* --- exports --------------------------------------------------------------------------- *)

let test_export_proof_dot () =
  let res = run_exn example_economy in
  let f =
    match Query.parse_and_ask res.db {|default("C")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "default(C) missing"
  in
  let proof = Option.get (Proof.of_fact res.db res.prov f) in
  let dot = Export.proof_dot res.db proof in
  check bool' "dot header" true (Textutil.starts_with ~prefix:"digraph proof" dot);
  (* DOT escapes the inner quotes of fact renderings *)
  check bool' "mentions the goal" true
    (List.length (Textutil.split_on_string ~sep:{|default(\"C\")|} dot) > 1);
  check bool' "mentions rule labels" true
    (List.length (Textutil.split_on_string ~sep:"gamma" dot) > 1)

let test_export_chase_graph_dot () =
  (* staggered contributions so a superseded aggregate exists *)
  let res =
    run_exn
      {|
alpha: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).
beta:  default(D), debts(D, C, V), E = sum(V) -> risk(C, E).
gamma: hasCapital(C, P2), risk(C, E), P2 < E -> default(C).
@goal(default).
shock("A", 6). hasCapital("A", 5). hasCapital("B", 2). hasCapital("C", 10).
debts("A", "B", 7). debts("A", "C", 3). debts("B", "C", 8).
|}
  in
  let dot = Export.chase_graph_dot res in
  check bool' "contains superseded aggregate too" true
    (List.length (Textutil.split_on_string ~sep:{|risk(\"C\", 3)|} dot) > 1);
  check bool' "contains the final aggregate" true
    (List.length (Textutil.split_on_string ~sep:{|risk(\"C\", 11)|} dot) > 1)

let test_export_instance_dot () =
  let res = run_exn example_economy in
  let dot = Export.instance_dot ~preds:[ "debts" ] res.db in
  check bool' "binary-with-value edge" true
    (List.length (Textutil.split_on_string ~sep:"debts(7)" dot) > 1
    || List.length (Textutil.split_on_string ~sep:"debts" dot) > 1);
  check bool' "filtered predicates only" true
    (List.length (Textutil.split_on_string ~sep:"hasCapital" dot) = 1)

(* --- why-provenance -------------------------------------------------------------------- *)

let test_why_single_witness () =
  let res = run_exn example_economy in
  let f =
    match Query.parse_and_ask res.db {|default("C")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "default(C) missing"
  in
  match Why.why res.db res.prov f with
  | [ witness ] ->
    (* the single witness is exactly the proof's extensional support *)
    let names = List.map Fact.to_string witness in
    List.iter
      (fun w -> check bool' ("witness contains " ^ w) true (List.mem w names))
      [ {|shock("A", 6)|}; {|debts("A", "B", 7)|}; {|hasCapital("C", 10)|} ];
    check bool' "only extensional facts" true
      (List.for_all (fun (w : Fact.t) -> Provenance.is_edb res.prov w.id) witness)
  | ws -> Alcotest.failf "expected one witness, got %d" (List.length ws)

let test_why_alternative_witnesses () =
  let res =
    run_exn
      {|
chain1: a(X) -> m(X).
chain2: m(X) -> goal(X).
direct: b(X) -> goal(X).
@goal(goal).
a("k"). b("k").
|}
  in
  let f =
    match Query.parse_and_ask res.db {|goal("k")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "goal missing"
  in
  let witnesses = Why.why res.db res.prov f in
  check int' "two independent witnesses" 2 (List.length witnesses);
  let poly = Why.polynomial res.db res.prov f in
  check bool' "polynomial is a sum" true
    (List.length (Textutil.split_on_string ~sep:" + " poly) = 2)

let test_why_minimality () =
  (* goal via b alone and via a·b: only the minimal witness {b} remains *)
  let res =
    run_exn
      {|
both: a(X), b(X) -> goal(X).
single: b(X) -> goal(X).
@goal(goal).
a("k"). b("k").
|}
  in
  let f =
    match Query.parse_and_ask res.db {|goal("k")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "goal missing"
  in
  match Why.why res.db res.prov f with
  | [ [ w ] ] -> check string' "minimal witness is b" {|b("k")|} (Fact.to_string w)
  | ws -> Alcotest.failf "expected the single minimal witness, got %d" (List.length ws)

let test_why_edb_is_itself () =
  let res = run_exn example_economy in
  let f =
    match Query.parse_and_ask res.db {|shock("A", 6)|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "shock missing"
  in
  match Why.why res.db res.prov f with
  | [ [ w ] ] -> check int' "its own witness" f.id w.id
  | _ -> Alcotest.fail "EDB fact must be its own single witness"

(* --- magic sets ----------------------------------------------------------------------- *)

let tc_program =
  {|
base: e(X, Y) -> path(X, Y).
step: path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}

let chain_edb n =
  List.init n (fun i ->
      Atom.make "e"
        [
          Term.str (Printf.sprintf "n%d" i); Term.str (Printf.sprintf "n%d" (i + 1));
        ])

let test_magic_prunes () =
  let { Parser.program; _ } = parse_exn tc_program in
  let edb = chain_edb 20 in
  let q =
    Atom.make "path" [ Term.str "n0"; Term.var "Y" ]
  in
  match Magic.answer program edb q, Chase.run program edb with
  | Ok a, Ok full ->
    check bool' "goal-directed path taken" true a.pruned;
    check int' "answers match the full chase" 20 (List.length a.facts);
    check bool' "fewer facts materialized" true (a.derived_count < full.derived_count)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_magic_adornments () =
  check Alcotest.string "bf" "bf"
    (Magic.adornment (Atom.make "p" [ Term.str "c"; Term.var "X" ]));
  check Alcotest.string "ff" "ff"
    (Magic.adornment (Atom.make "p" [ Term.var "X"; Term.var "Y" ]));
  check Alcotest.string "bb" "bb"
    (Magic.adornment (Atom.make "p" [ Term.int 1; Term.str "c" ]))

let test_magic_rejects_bad_queries () =
  let { Parser.program; _ } = parse_exn tc_program in
  (match Magic.rewrite program (Atom.make "nosuch" [ Term.var "X" ]) with
  | Error msg -> check bool' "unknown predicate" true (Textutil.contains_word msg "nosuch")
  | Ok _ -> Alcotest.fail "unknown predicate accepted");
  match Magic.rewrite program (Atom.make "e" [ Term.var "X"; Term.var "Y" ]) with
  | Error msg -> check bool' "extensional query" true (Textutil.contains_word msg "extensional")
  | Ok _ -> Alcotest.fail "extensional query rewritten"

let test_magic_prunes_aggregation () =
  let { Parser.program; facts } =
    parse_exn
      {|
sale(Shop, V), T = sum(V) -> revenue(Shop, T).
@goal(revenue).
sale("x", 1). sale("x", 2). sale("y", 5).
|}
  in
  (match Magic.answer program facts (Atom.make "revenue" [ Term.str "x"; Term.var "T" ]) with
  | Ok a ->
    check bool' "aggregation is in the magic fragment now" true a.pruned;
    (match a.facts with
    | [ f ] -> check string' "sum restricted to the demanded group" {|revenue("x", 3)|} (Fact.to_string f)
    | fs -> Alcotest.failf "expected one answer, got %d" (List.length fs))
  | Error e -> Alcotest.fail e);
  (* binding the aggregate result itself is outside the fragment *)
  match Magic.answer program facts (Atom.make "revenue" [ Term.str "x"; Term.int 3 ]) with
  | Ok a ->
    check bool' "bound aggregate result falls back" true (not a.pruned);
    check int' "still answers" 1 (List.length a.facts)
  | Error e -> Alcotest.fail e

let gp_program =
  {|
g1: acquisition(B, T, S), strategic(T), S > 0.1, not euEntity(B) -> goldenPower(B, T).
g2: goldenPower(B, T), not vetted(B, T) -> blockedDeal(B, T).
c1: vetted(B, T), not goldenPower(B, T) -> false.
@goal(blockedDeal).
|}

let gp_edb =
  (* a crowd of unrelated buyers: the full chase derives a golden-power
     and blocked-deal fact per buyer, the buyerA-scoped chase only its
     own slice *)
  List.concat
    (List.init 20 (fun i ->
         let b = Printf.sprintf "crowd%d" i in
         [
           Atom.make "acquisition" [ Term.str b; Term.str "gridCo"; Term.num 0.2 ];
         ]))
  @ [
      Atom.make "acquisition" [ Term.str "buyerA"; Term.str "gridCo"; Term.num 0.2 ];
      Atom.make "acquisition" [ Term.str "buyerB"; Term.str "gridCo"; Term.num 0.3 ];
      Atom.make "acquisition" [ Term.str "buyerC"; Term.str "railCo"; Term.num 0.4 ];
      Atom.make "strategic" [ Term.str "gridCo" ];
      Atom.make "strategic" [ Term.str "railCo" ];
      Atom.make "euEntity" [ Term.str "buyerB" ];
      Atom.make "vetted" [ Term.str "buyerC"; Term.str "railCo" ];
    ]

let test_magic_negation () =
  let { Parser.program; _ } = parse_exn gp_program in
  let q = Atom.make "blockedDeal" [ Term.str "buyerA"; Term.var "T" ] in
  match Magic.answer program gp_edb q, Chase.run program gp_edb with
  | Ok a, Ok full ->
    check bool' "negation is in the magic fragment now" true a.pruned;
    let magic_answers = List.map Fact.to_string a.facts |> List.sort String.compare in
    let full_answers =
      Query.ask full.db q |> List.map (fun (f, _) -> Fact.to_string f)
      |> List.sort String.compare
    in
    check Alcotest.(list string) "answers match the full chase" full_answers magic_answers;
    check bool' "fewer facts materialized" true (a.derived_count < full.derived_count)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_magic_detects_inconsistency () =
  let { Parser.program; _ } = parse_exn gp_program in
  (* vetted without golden power: c1 fires on the full instance even
     though the queried slice (buyerA) never touches it *)
  let bad =
    Atom.make "vetted" [ Term.str "buyerD"; Term.str "gridCo" ] :: gp_edb
  in
  let q = Atom.make "blockedDeal" [ Term.str "buyerA"; Term.var "T" ] in
  (match Chase.run program bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "full chase accepted an inconsistent base");
  match Magic.answer program bad q with
  | Error e ->
    check bool' "scoped chase reports the same inconsistency" true
      (Ekg_kernel.Textutil.contains_word e "constraint"
      || Ekg_kernel.Textutil.contains_word e "inconsistent")
  | Ok _ -> Alcotest.fail "scoped chase missed the constraint violation"

let test_magic_free_mask () =
  let { Parser.program; _ } = parse_exn tc_program in
  let edb = chain_edb 8 in
  let q = Atom.make "path" [ Term.var "X"; Term.var "Y" ] in
  match Magic.answer program edb q, Chase.run program edb with
  | Ok a, Ok full ->
    check bool' "all-free mask still rewrites (0-ary demand)" true a.pruned;
    check int' "same answers as the full chase"
      (List.length (Query.ask full.db q))
      (List.length a.facts)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_magic_existential_falls_back () =
  let { Parser.program; facts } =
    parse_exn
      {|
company(X) -> keyPerson(X, P).
@goal(keyPerson).
company("a").
|}
  in
  match Magic.answer program facts (Atom.make "keyPerson" [ Term.str "a"; Term.var "P" ]) with
  | Ok a ->
    check bool' "existential heads fall back" true (not a.pruned);
    check int' "still answers" 1 (List.length a.facts)
  | Error e -> Alcotest.fail e

let test_magic_unadorn_proof () =
  let { Parser.program; _ } = parse_exn tc_program in
  let edb = chain_edb 6 in
  let q = Atom.make "path" [ Term.str "n0"; Term.str "n3" ] in
  match Magic.specialize program ~pred:"path" ~mask:"bb" with
  | Error e -> Alcotest.fail e
  | Ok sp -> (
    match Chase.run sp.Magic.sp_program (edb @ Magic.seeds sp q) with
    | Error e -> Alcotest.fail e
    | Ok res -> (
      match Query.ask res.db (Magic.goal_atom sp q) with
      | [] -> Alcotest.fail "no scoped answer"
      | (f, _) :: _ -> (
        match Proof.of_fact res.db res.prov f with
        | None -> Alcotest.fail "scoped answer has no proof"
        | Some proof ->
          let plain = Magic.unadorn_proof sp proof in
          check string' "goal renamed" {|path("n0", "n3")|}
            (Fact.to_string plain.Proof.goal);
          let ids = Program.rule_ids program in
          List.iteri
            (fun i (s : Proof.step) ->
              check int' "steps re-indexed" i s.Proof.index;
              check bool'
                ("rule id restored: " ^ s.Proof.rule_id)
                true (List.mem s.Proof.rule_id ids);
              List.iter
                (fun (p : Fact.t) ->
                  check bool' "no magic premises" false
                    (List.mem p.Fact.pred sp.Magic.sp_magic_preds))
                (s.Proof.fact :: s.Proof.premises))
            plain.Proof.steps)))

let prop_magic_equals_full_chase =
  QCheck2.Test.make ~name:"magic answers = full-chase answers" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 15) (pair (int_range 0 5) (int_range 0 5)))
        (int_range 0 5))
    (fun (raw, start) ->
      let edb =
        List.map
          (fun (i, j) ->
            Atom.make "e"
              [ Term.str (Printf.sprintf "n%d" i); Term.str (Printf.sprintf "n%d" j) ])
          raw
      in
      let { Parser.program; _ } = parse_exn tc_program in
      let q =
        Atom.make "path" [ Term.str (Printf.sprintf "n%d" start); Term.var "Y" ]
      in
      match Magic.answer program edb q, Chase.run program edb with
      | Ok a, Ok full ->
        let magic_answers =
          List.map Fact.to_string a.facts |> List.sort String.compare
        in
        let full_answers =
          Query.ask full.db q
          |> List.map (fun (f, _) -> Fact.to_string f)
          |> List.sort String.compare
        in
        a.pruned && magic_answers = full_answers
        && a.derived_count <= full.derived_count
      | _ -> false)

(* The serving property behind the query lane: specializing for a
   bound/free pattern, seeding with the query constants and chasing the
   rewritten program (at domains > 1) answers exactly what filtering
   the full materialization answers — for plain, negated and
   aggregating programs alike, inconsistency detection included. *)
let ql_plain =
  {|
base: e(X, Y) -> path(X, Y).
step: path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}

let ql_negation =
  {|
n1: e(X, Y) -> path(X, Y).
n2: path(X, Z), e(Z, Y) -> path(X, Y).
n3: node(X), node(Y), not path(X, Y) -> unreachable(X, Y).
@goal(unreachable).
|}

let ql_aggregation =
  {|
a1: e(X, Y) -> reach(X, Y).
a2: reach(X, Z), e(Z, Y) -> reach(X, Y).
a3: reach(X, Y), w(Y, V), T = sum(V) -> inflow(X, T).
@goal(inflow).
|}

let prop_query_lane_equals_materialization =
  QCheck2.Test.make
    ~name:"query lane = filtered materialization (plain/neg/agg, any mask)"
    ~count:120
    QCheck2.Gen.(
      tup4 (int_range 0 2)
        (list_size (int_range 0 12) (pair (int_range 0 4) (int_range 0 4)))
        (pair bool bool)
        (pair (int_range 0 4) (int_range 0 4)))
    (fun (which, raw, (b1, b2), (c1, c2)) ->
      let node i = Printf.sprintf "n%d" i in
      let edb =
        List.concat_map
          (fun (i, j) ->
            [
              Atom.make "e" [ Term.str (node i); Term.str (node j) ];
              Atom.make "w" [ Term.str (node j); Term.int (1 + ((i + j) mod 3)) ];
            ])
          raw
        @ List.init 5 (fun i -> Atom.make "node" [ Term.str (node i) ])
      in
      let source, pred =
        match which with
        | 0 -> ql_plain, "path"
        | 1 -> ql_negation, "unreachable"
        | _ -> ql_aggregation, "inflow"
      in
      let { Parser.program; _ } = parse_exn source in
      let arg bound c name = if bound then Term.str (node c) else Term.var name in
      let q =
        if which = 2 then
          (* inflow's second column is the aggregate result: only its
             first column admits a bound position *)
          Atom.make pred [ arg b1 c1 "X"; Term.var "T" ]
        else Atom.make pred [ arg b1 c1 "X"; arg b2 c2 "Y" ]
      in
      let full = Chase.run_checked ~domains:2 program edb in
      let scoped =
        match Magic.specialize program ~pred ~mask:(Magic.adornment q) with
        | Error e -> Error ("specialize: " ^ e)
        | Ok sp -> (
          match
            Chase.run_checked ~domains:2 sp.Magic.sp_program
              (edb @ Magic.seeds sp q)
          with
          | Error err -> Error (Chase.error_to_string err)
          | Ok res ->
            Ok
              (Query.ask res.db (Magic.goal_atom sp q)
              |> List.map (fun (f, _) ->
                     Fact.to_string (Magic.original_fact sp f))
              |> List.sort String.compare))
      in
      match full, scoped with
      | Error _, Error _ -> true
      | Ok full, Ok scoped ->
        let filtered =
          Query.ask full.db q
          |> List.map (fun (f, _) -> Fact.to_string f)
          |> List.sort String.compare
        in
        scoped = filtered
      | Ok _, Error e -> QCheck2.Test.fail_reportf "scoped failed: %s" e
      | Error e, Ok _ ->
        QCheck2.Test.fail_reportf "full failed where scoped succeeded: %s"
          (Chase.error_to_string e))

(* --- io ---------------------------------------------------------------------------- *)

let test_csv_parsing () =
  let csv = {|# comment
"A",14000000
"B, Inc.",2.5
"quote""inside",true
|} in
  match Io.facts_of_csv ~pred:"p" csv with
  | Error e -> Alcotest.fail e
  | Ok facts ->
    check int' "three facts" 3 (List.length facts);
    (match facts with
    | [ a; b; c ] ->
      check string' "plain string + int" {|p("A", 14000000)|} (Atom.to_string a);
      check string' "comma inside quotes" {|p("B, Inc.", 2.5)|} (Atom.to_string b);
      check string' "escaped quote + bool" {|p("quote\"inside", true)|} (Atom.to_string c)
    | _ -> Alcotest.fail "unexpected shape")

let test_csv_arity_mismatch () =
  match Io.facts_of_csv ~pred:"p" "\"A\",1\n\"B\"\n" with
  | Error msg -> check bool' "line reported" true (Textutil.contains_word msg "2")
  | Ok _ -> Alcotest.fail "ragged CSV accepted"

let test_csv_roundtrip () =
  let res = run_exn example_economy in
  let facts = Database.active res.db "debts" in
  let csv = Io.facts_to_csv facts in
  match Io.facts_of_csv ~pred:"debts" csv with
  | Error e -> Alcotest.fail e
  | Ok atoms ->
    check bool' "round-trip preserves facts" true
      (List.map Atom.to_string atoms
      = List.map (fun f -> Fact.to_string f) facts)

let test_load_directory () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ekg_io_test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  write "shock.csv" "\"A\",6\n";
  write "hasCapital.csv" "\"A\",5\n\"B\",2\n";
  write "ignored.txt" "not csv";
  (match Io.load_directory dir with
  | Error e -> Alcotest.fail e
  | Ok facts ->
    check int' "three facts from two files" 3 (List.length facts);
    check bool' "predicate from file name" true
      (List.exists (fun (a : Atom.t) -> a.pred = "shock") facts));
  Sys.remove (Filename.concat dir "shock.csv");
  Sys.remove (Filename.concat dir "hasCapital.csv");
  Sys.remove (Filename.concat dir "ignored.txt");
  Sys.rmdir dir

let test_json_export () =
  let res = run_exn example_economy in
  let json = Io.result_to_json res in
  check bool' "facts array" true (Textutil.starts_with ~prefix:"{\"facts\": [" json);
  check bool' "derived facts carry their rule" true
    (List.length (Textutil.split_on_string ~sep:{|"rule": "gamma"|} json) > 1);
  check bool' "premise ids present" true
    (List.length (Textutil.split_on_string ~sep:{|"premises"|} json) > 1);
  (* escaping: a value with a quote must stay valid *)
  let f = { Fact.id = 0; pred = "p"; args = [| Value.str {|a"b|} |] } in
  check bool' "quotes escaped" true
    (List.length (Textutil.split_on_string ~sep:{|a\"b|} (Io.fact_to_json f)) > 1)

(* --- queries ------------------------------------------------------------------------ *)

let test_query_patterns () =
  let res = run_exn example_economy in
  (match Query.parse_and_ask res.db "default(X)" with
  | Ok matches -> check int' "three defaults" 3 (List.length matches)
  | Error e -> Alcotest.fail e);
  check bool' "holds" true (Query.holds res.db (Atom.make "default" [ Term.str "B" ]));
  check bool' "not holds" false
    (Query.holds res.db (Atom.make "default" [ Term.str "Z" ]))

(* --- properties ----------------------------------------------------------------------- *)

(* reference transitive closure *)
module SPair = Set.Make (struct
  type t = string * string

  let compare = compare
end)

let ref_closure edges =
  let step set =
    SPair.fold
      (fun (x, z) acc ->
        List.fold_left
          (fun acc (z', y) -> if z = z' then SPair.add (x, y) acc else acc)
          acc edges)
      set set
  in
  let rec fix set =
    let set' = step set in
    if SPair.equal set set' then set else fix set'
  in
  fix (SPair.of_list edges)

let edges_gen =
  QCheck2.Gen.(list_size (int_range 0 15) (pair (int_range 0 5) (int_range 0 5)))

let prop_closure_matches_reference =
  QCheck2.Test.make ~name:"chase computes reference transitive closure" ~count:100
    edges_gen (fun raw ->
      let edges =
        List.map (fun (i, j) -> (Printf.sprintf "n%d" i, Printf.sprintf "n%d" j)) raw
      in
      let facts =
        List.map (fun (x, y) -> Atom.make "e" [ Term.str x; Term.str y ]) edges
      in
      let { Parser.program; _ } =
        parse_exn {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}
      in
      match Chase.run program facts with
      | Error _ -> false
      | Ok res ->
        let got =
          Database.active res.db "path"
          |> List.map (fun (f : Fact.t) ->
                 (Value.to_display f.args.(0), Value.to_display f.args.(1)))
          |> List.sort compare
        in
        got = SPair.elements (ref_closure edges))

let prop_chase_deterministic =
  QCheck2.Test.make ~name:"chase is deterministic" ~count:50 edges_gen (fun raw ->
      let facts =
        List.map
          (fun (i, j) ->
            Atom.make "e" [ Term.str (string_of_int i); Term.str (string_of_int j) ])
          raw
      in
      let { Parser.program; _ } =
        parse_exn {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}
      in
      match Chase.run program facts, Chase.run program facts with
      | Ok a, Ok b ->
        let dump r =
          Database.active_all r.Chase.db |> List.map Fact.to_string
        in
        dump a = dump b
      | _ -> false)

(* --- parallel chase, join planning and interning --------------------------- *)

let test_intvec () =
  let v = Intvec.create ~capacity:2 () in
  check int' "empty" 0 (Intvec.length v);
  for i = 0 to 99 do
    Intvec.push v (i * 3)
  done;
  check int' "length after growth" 100 (Intvec.length v);
  check int' "get" 21 (Intvec.get v 7);
  check bool' "to_list is insertion order" true
    (Intvec.to_list v = List.init 100 (fun i -> i * 3));
  check bool' "exists finds" true (Intvec.exists (fun x -> x = 297) v);
  check bool' "exists misses" false (Intvec.exists (fun x -> x = 298) v);
  let folded = Intvec.fold_left (fun acc x -> acc + x) 0 v in
  check int' "fold" (3 * (99 * 100 / 2)) folded

let test_symtab () =
  let t = Symtab.create () in
  let a = Symtab.intern t "own" in
  let b = Symtab.intern t "control" in
  check bool' "distinct symbols" true (a <> b);
  check int' "re-interning is stable" a (Symtab.intern t "own");
  check int' "size" 2 (Symtab.size t);
  check string' "name round-trip" "control" (Symtab.name t b);
  check bool' "find known" true (Symtab.find t "own" = Some a);
  check bool' "find unknown" true (Symtab.find t "missing" = None)

let test_plan_ordering () =
  let rule src =
    match Parser.parse_rule src with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse_rule: %s" e
  in
  let card = function "big" -> 1000 | "small" -> 5 | _ -> 0 in
  let r = rule "r: big(X, Y), small(Y, Z) -> out(X, Z)." in
  let plan = Plan.compile ~card r in
  check bool' "small atom seeds the join" true (plan.Plan.order = [| 1; 0 |]);
  check bool' "reordered flag" true plan.Plan.reordered;
  (* equal cardinalities: ties keep textual order *)
  let tie = Plan.compile ~card:(fun _ -> 7) r in
  check bool' "ties keep textual order" true (tie.Plan.order = [| 0; 1 |]);
  check bool' "identity not reordered" false tie.Plan.reordered;
  (* a bound variable makes a huge predicate cheap: after small(Y,Z),
     big(Y,W) has one bound position and beats an unbound mid(..) *)
  let r3 = rule "r3: big(Y, W), mid(A, B), small(Y, Z) -> out(W, A)." in
  let card3 = function "big" -> 1000 | "mid" -> 600 | "small" -> 5 | _ -> 0 in
  let plan3 = Plan.compile ~card:card3 r3 in
  check bool' "bound-variable discount orders big before mid" true
    (plan3.Plan.order = [| 2; 0; 1 |])

let test_exists_matching () =
  let db = Database.create () in
  ignore (Database.add db "e" [| Value.str "a"; Value.str "b" |]);
  ignore (Database.add db "e" [| Value.str "b"; Value.str "c" |]);
  let pat args = Atom.make "e" args in
  check bool' "ground hit" true
    (Database.exists_matching db (pat [ Term.str "a"; Term.str "b" ]) Subst.empty);
  check bool' "variable hit" true
    (Database.exists_matching db (pat [ Term.var "X"; Term.str "c" ]) Subst.empty);
  check bool' "miss" false
    (Database.exists_matching db (pat [ Term.str "c"; Term.var "X" ]) Subst.empty);
  check bool' "unknown predicate" false
    (Database.exists_matching db (Atom.make "q" [ Term.var "X" ]) Subst.empty);
  (* agrees with [matching] on emptiness *)
  let probe = pat [ Term.var "X"; Term.var "Y" ] in
  check bool' "consistent with matching" true
    (Database.exists_matching db probe Subst.empty
    = (Database.matching db probe Subst.empty <> []))

let test_pred_card () =
  let db = Database.create () in
  check int' "unknown predicate" 0 (Database.pred_card db "p");
  let id =
    match Database.add db "p" [| Value.int 1 |] with
    | `Added f -> f.Fact.id
    | `Existing _ -> Alcotest.fail "fresh"
  in
  ignore (Database.add db "p" [| Value.int 2 |]);
  ignore (Database.add db "q" [| Value.int 3 |]);
  check int' "counts facts" 2 (Database.pred_card db "p");
  Database.deactivate db id;
  check int' "deactivation does not shrink the estimate" 2
    (Database.pred_card db "p")

let test_par_map () =
  Par.with_pool ~domains:3 (fun pool ->
      let pool = Option.get pool in
      check int' "pool size" 3 (Par.domains pool);
      let tasks = Array.init 50 (fun i () -> i * i) in
      let out = Par.map pool tasks in
      check bool' "results in task order" true
        (out = Array.init 50 (fun i -> i * i));
      (* reusable across batches *)
      let out2 = Par.map pool (Array.init 7 (fun i () -> -i)) in
      check bool' "second batch" true (out2 = Array.init 7 (fun i -> -i));
      (* a raising task propagates after the batch drains *)
      Alcotest.check_raises "exception propagates" (Failure "task 3") (fun () ->
          ignore
            (Par.map pool
               (Array.init 8 (fun i () ->
                    if i = 3 then failwith "task 3" else i))));
      (* the pool survives a failed batch *)
      let out3 = Par.map pool (Array.init 4 (fun i () -> i + 1)) in
      check bool' "usable after failure" true (out3 = [| 1; 2; 3; 4 |]));
  (* domains <= 1: no pool, caller runs inline *)
  check bool' "sequential fallback" true
    (Par.with_pool ~domains:1 (fun pool -> pool = None))

(* the full externally visible result: facts, ids, provenance and the
   chase graph — byte equality is the determinism contract *)
let chase_fingerprint (r : Chase.result) =
  Io.result_to_json r ^ Export.chase_graph_dot r

let test_parallel_identical_on_bundled_apps () =
  List.iter
    (fun app ->
      match Ekg_apps.Bundled.load app with
      | Error e -> Alcotest.failf "load %s: %s" app e
      | Ok loaded ->
        let program =
          loaded.Ekg_apps.Apps_util.pipeline.Ekg_core.Pipeline.program
        in
        let edb = loaded.Ekg_apps.Apps_util.edb in
        let seq = Chase.run_exn program edb in
        List.iter
          (fun domains ->
            let par = Chase.run_exn ~domains program edb in
            check int' (app ^ ": rounds identical") seq.Chase.rounds
              par.Chase.rounds;
            check int' (app ^ ": derived identical") seq.Chase.derived_count
              par.Chase.derived_count;
            check bool'
              (Printf.sprintf "%s: domains=%d bit-identical" app domains)
              true
              (chase_fingerprint seq = chase_fingerprint par))
          [ 2; 4 ])
    Ekg_apps.Bundled.names

let test_naive_matches_seminaive_under_planner () =
  (* multi-predicate joins so the planner actually reorders; negation
     and an aggregate so every evaluation path is covered *)
  let src = {|
base1: e(X, Y) -> path(X, Y).
step: path(X, Z), e(Z, Y) -> path(X, Y).
tag: path(X, Y), label(Y, L), not blocked(X) -> tagged(X, L).
score: path(X, Y), weight(Y, W), T = sum(W) -> total(X, T).
@goal(tagged).
e("a", "b"). e("b", "c"). e("c", "d"). e("a", "c").
label("c", "mid"). label("d", "end").
weight("b", 2). weight("c", 3). weight("d", 5).
blocked("b").
|}
  in
  let { Parser.program; facts } = parse_exn src in
  let semi = Chase.run_exn program facts in
  let naive = Chase.run_exn ~naive:true program facts in
  let dump (r : Chase.result) =
    Database.active_all r.db |> List.map Fact.to_string
    |> List.sort String.compare
  in
  check bool' "same fixpoint" true (dump semi = dump naive)

let prop_parallel_equals_sequential =
  QCheck2.Test.make ~name:"parallel chase is bit-identical to sequential"
    ~count:25 edges_gen (fun raw ->
      let facts =
        List.map
          (fun (i, j) ->
            Atom.make "e" [ Term.str (string_of_int i); Term.str (string_of_int j) ])
          raw
      in
      let { Parser.program; _ } =
        parse_exn {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}
      in
      match Chase.run program facts, Chase.run ~domains:3 program facts with
      | Ok a, Ok b -> chase_fingerprint a = chase_fingerprint b
      | _ -> false)

(* --- join engines ------------------------------------------------------------

   The columnar hash-join engine must reproduce the nested-loop
   engine's output byte-for-byte — same facts, same ids, same
   provenance, same chase graph — on every evaluation path. *)

let test_join_engines_identical_all_features () =
  (* negation, aggregation, arithmetic conditions and an existential
     head in one program: every matcher path in a single fixpoint *)
  let src = {|
base: e(X, Y) -> path(X, Y).
step: path(X, Z), e(Z, Y) -> path(X, Y).
tag: path(X, Y), label(Y, L), not blocked(X) -> tagged(X, L).
score: path(X, Y), weight(Y, W), T = sum(W) -> total(X, T).
spawn: tagged(X, L) -> handler(X, H).
@goal(tagged).
e("a", "b"). e("b", "c"). e("c", "d"). e("a", "c"). e("d", "a").
label("c", "mid"). label("d", "end").
weight("b", 2). weight("c", 3). weight("d", 5).
blocked("b").
|}
  in
  let { Parser.program; facts } = parse_exn src in
  let hash = Chase.run_exn ~join:Matcher.Hash program facts in
  let nested = Chase.run_exn ~join:Matcher.Nested program facts in
  check bool' "hash = nested, byte-identical" true
    (chase_fingerprint hash = chase_fingerprint nested);
  (* and independent of the parallel cut of the probe partitions *)
  let hash4 = Chase.run_exn ~join:Matcher.Hash ~domains:4 program facts in
  check bool' "hash at domains=4 identical" true
    (chase_fingerprint hash = chase_fingerprint hash4)

let join_program_plain = {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}

(* negation across strata plus a join inside the negated stratum *)
let join_program_negation = {|
e(X, Y) -> reach(X, Y).
reach(X, Z), e(Z, Y) -> reach(X, Y).
e(X, Y), not reach(Y, X) -> oneway(X, Y).
@goal(oneway).
|}

let prop_join_engines_agree program_src name =
  QCheck2.Test.make ~name ~count:60 edges_gen (fun raw ->
      let facts =
        List.map
          (fun (i, j) ->
            Atom.make "e" [ Term.str (string_of_int i); Term.str (string_of_int j) ])
          raw
      in
      let { Parser.program; _ } = parse_exn program_src in
      match
        ( Chase.run ~join:Matcher.Hash program facts,
          Chase.run ~join:Matcher.Nested program facts )
      with
      | Ok h, Ok n -> chase_fingerprint h = chase_fingerprint n
      | _ -> false)

let prop_join_engines_agree_plain =
  prop_join_engines_agree join_program_plain
    "hash join = nested loop (recursive closure, semi-naive deltas)"

let prop_join_engines_agree_negation =
  prop_join_engines_agree join_program_negation
    "hash join = nested loop (stratified negation)"

let prop_join_engines_agree_naive =
  (* naive mode disables delta seeding: every round re-runs full
     passes, covering the non-delta probe path *)
  QCheck2.Test.make ~name:"hash join = nested loop (naive full passes)"
    ~count:30 edges_gen (fun raw ->
      let facts =
        List.map
          (fun (i, j) ->
            Atom.make "e" [ Term.str (string_of_int i); Term.str (string_of_int j) ])
          raw
      in
      let { Parser.program; _ } = parse_exn join_program_plain in
      match
        ( Chase.run ~naive:true ~join:Matcher.Hash program facts,
          Chase.run ~naive:true ~join:Matcher.Nested program facts )
      with
      | Ok h, Ok n -> chase_fingerprint h = chase_fingerprint n
      | _ -> false)

(* --- budgets and cooperative cancellation ----------------------------------- *)

(* one new fact per round, for a million rounds: the shape a runaway
   recursive program takes in production *)
let divergent_src = {|
n(X), Y = X + 1, Y < 1000000 -> n(Y).
@goal(n).
n(0).
|}

let test_budget_rounds () =
  let { Parser.program; facts } = parse_exn divergent_src in
  match Chase.run_checked ~budget:(Chase.budget ~rounds:5 ()) program facts with
  | Error (Chase.Budget_exceeded (`Rounds, p)) ->
    check int' "stopped at the round budget" 5 p.Chase.partial_rounds;
    check int' "one fact per round" 5 p.Chase.partial_derived;
    check bool' "diagnostic names the resource" true
      (Textutil.contains_word
         (Chase.error_to_string (Chase.Budget_exceeded (`Rounds, p)))
         "budget")
  | Error e -> Alcotest.failf "wrong error: %s" (Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "divergent program converged?"

let test_budget_facts () =
  let { Parser.program; facts } = parse_exn divergent_src in
  match Chase.run_checked ~budget:(Chase.budget ~facts:10 ()) program facts with
  | Error (Chase.Budget_exceeded (`Facts, p)) ->
    check bool' "at least the budgeted facts" true (p.Chase.partial_derived >= 10);
    (* checked at round boundaries: one round's worth of overshoot max *)
    check bool' "no runaway overshoot" true (p.Chase.partial_derived <= 11);
    check bool' "resource exhaustion is not a client error" false
      (Chase.client_error (Chase.Budget_exceeded (`Facts, p)))
  | Error e -> Alcotest.failf "wrong error: %s" (Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "divergent program converged?"

let test_budget_cancel () =
  let { Parser.program; facts } = parse_exn divergent_src in
  let polls = ref 0 in
  let cancel () =
    incr polls;
    !polls > 3
  in
  match Chase.run_checked ~budget:(Chase.budget ~cancel ()) program facts with
  | Error (Chase.Cancelled p) ->
    check bool' "made some progress first" true (p.Chase.partial_rounds > 0);
    check bool' "partial stats stringify" true
      (String.length (Chase.partial_to_string p) > 0)
  | Error e -> Alcotest.failf "wrong error: %s" (Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "cancel hook ignored"

let test_budget_deadline_trips_mid_match () =
  (* a single cross-join round too big to finish: only the in-match
     interrupt (polled every few thousand join nodes) can stop it *)
  let n = 150 in
  let facts =
    List.concat_map
      (fun i ->
        let v = Value.int i in
        [ Atom.make "a" [ Term.Cst v ]; Atom.make "b" [ Term.Cst v ];
          Atom.make "c" [ Term.Cst v ] ])
      (List.init n (fun i -> i))
  in
  let { Parser.program; _ } =
    parse_exn {|
a(X), b(Y), c(Z) -> t(X, Y, Z).
@goal(t).
|}
  in
  let t0 = Unix.gettimeofday () in
  match
    Chase.run_checked ~budget:(Chase.within_ms 30.) program facts
  with
  | Error (Chase.Budget_exceeded (`Deadline, p)) ->
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    (* 150^3 insertions would take far longer than the deadline; the
       interrupt must fire well before the round completes *)
    check bool' "stopped promptly (within ~2x deadline or so)" true
      (elapsed_ms < 1000.);
    check bool' "partial wall-clock recorded" true (p.Chase.partial_wall_s > 0.)
  | Error e -> Alcotest.failf "wrong error: %s" (Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "join finished under an immediate deadline?"

let test_budget_converging_run_unaffected () =
  let src = {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
e("a", "b"). e("b", "c").
|}
  in
  let { Parser.program; facts } = parse_exn src in
  let far = Ekg_obs.Clock.now_s () +. 3600. in
  match
    Chase.run_checked
      ~budget:(Chase.budget ~deadline_s:far ~rounds:1000 ~facts:100000 ())
      program facts
  with
  | Ok r -> check int' "full closure derived" 3 r.Chase.derived_count
  | Error e -> Alcotest.failf "roomy budget tripped: %s" (Chase.error_to_string e)

(* the tentpole invariant: an unlimited budget is free — byte-identical
   output (facts, ids, nulls, provenance, chase graph) to no budget *)
let prop_unlimited_budget_is_identity =
  QCheck2.Test.make ~name:"unlimited budget is byte-identical to no budget"
    ~count:50 edges_gen (fun raw ->
      let facts =
        List.map
          (fun (i, j) ->
            Atom.make "e" [ Term.str (string_of_int i); Term.str (string_of_int j) ])
          raw
      in
      let { Parser.program; _ } =
        parse_exn {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}
      in
      match
        Chase.run program facts, Chase.run ~budget:Chase.unlimited program facts
      with
      | Ok a, Ok b -> chase_fingerprint a = chase_fingerprint b
      | _ -> false)

(* --- incremental maintenance ----------------------------------------------- *)

let tc_src = {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}

let edge x y = Atom.make "e" [ Term.str x; Term.str y ]

let run_atoms src facts =
  let { Parser.program; _ } = parse_exn src in
  match Chase.run program facts with
  | Ok r -> (program, r)
  | Error e -> Alcotest.failf "chase: %s" e

let update_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "update: %s" (Chase.error_to_string e)

(* content identity with an independently cold-chased fact base *)
let check_matches_cold msg program res base =
  match Chase.run program base with
  | Error e -> Alcotest.failf "cold reference chase: %s" e
  | Ok cold ->
    check string' msg
      (Database.fingerprint cold.Chase.db)
      (Database.fingerprint res.Chase.db)

let test_incr_add_warm_start () =
  let program, res = run_atoms tc_src [ edge "a" "b"; edge "b" "c" ] in
  let res', upd = update_exn (Chase.add_facts program res [ edge "c" "d" ]) in
  check bool' "incremental path taken" true upd.Chase.upd_incremental;
  check bool' "ran at least one round" true (upd.Chase.upd_rounds >= 1);
  check bool' "path pred reported changed" true
    (List.mem "path" upd.Chase.upd_changed_preds);
  check_matches_cold "addition = cold chase" program res'
    [ edge "a" "b"; edge "b" "c"; edge "c" "d" ];
  check bool' "new closure fact present" true
    (List.mem {|path("a", "d")|} (actives res' "path"))

let test_incr_retract_cone () =
  let program, res = run_atoms tc_src [ edge "a" "b"; edge "b" "c"; edge "c" "d" ] in
  let res', upd = update_exn (Chase.retract_facts program res [ edge "b" "c" ]) in
  check bool' "incremental path taken" true upd.Chase.upd_incremental;
  check bool' "cone retracted" true (upd.Chase.upd_retracted >= 3);
  check_matches_cold "retraction = cold chase" program res'
    [ edge "a" "b"; edge "c" "d" ];
  check bool' "downstream closure gone" true
    (not (List.mem {|path("a", "d")|} (actives res' "path")))

let test_incr_retract_alternative_derivation_survives () =
  (* two disjoint supports for reach("a"): losing one must not lose the fact *)
  let src = {|
e1(X) -> reach(X).
e2(X) -> reach(X).
reach(X) -> seen(X).
@goal(seen).
|}
  in
  let a1 = Atom.make "e1" [ Term.str "a" ] and a2 = Atom.make "e2" [ Term.str "a" ] in
  let program, res = run_atoms src [ a1; a2 ] in
  let res', upd = update_exn (Chase.retract_facts program res [ a1 ]) in
  check bool' "incremental path taken" true upd.Chase.upd_incremental;
  check bool' "over-deleted facts re-derived" true (upd.Chase.upd_rederived >= 1);
  check bool' "reach survives via e2" true (List.mem {|reach("a")|} (actives res' "reach"));
  check bool' "downstream seen survives" true (List.mem {|seen("a")|} (actives res' "seen"));
  check_matches_cold "survival = cold chase" program res' [ a2 ];
  (* the surviving fact's proof must now bottom out in e2, not the
     retracted e1 *)
  match Database.find_exact res'.Chase.db "reach" [| Value.str "a" |] with
  | None -> Alcotest.fail "reach(a) lost"
  | Some f -> (
    match Proof.of_fact res'.Chase.db res'.Chase.prov f with
    | None -> Alcotest.fail "no proof for surviving fact"
    | Some p ->
      let leaves = Proof.facts_used p |> List.map Fact.to_string in
      check bool' "proof grounded in surviving support" true
        (List.mem {|e2("a")|} leaves && not (List.mem {|e1("a")|} leaves)))

let test_incr_retraction_enables_negation () =
  (* deleting blocker(x) must enable the later-stratum candidate *)
  let src = {|
cand(X), not blocked(X) -> winner(X).
block(X) -> blocked(X).
@goal(winner).
|}
  in
  let cand = Atom.make "cand" [ Term.str "x" ]
  and block = Atom.make "block" [ Term.str "x" ] in
  let program, res = run_atoms src [ cand; block ] in
  check int' "blocked initially" 0 (List.length (actives res "winner"));
  let res', upd = update_exn (Chase.retract_facts program res [ block ]) in
  check bool' "incremental path taken" true upd.Chase.upd_incremental;
  check bool' "winner now derived" true (List.mem {|winner("x")|} (actives res' "winner"));
  check_matches_cold "negation enablement = cold chase" program res' [ cand ]

let test_incr_addition_disables_negation () =
  let src = {|
cand(X), not blocked(X) -> winner(X).
block(X) -> blocked(X).
@goal(winner).
|}
  in
  let cand = Atom.make "cand" [ Term.str "x" ]
  and block = Atom.make "block" [ Term.str "x" ] in
  let program, res = run_atoms src [ cand ] in
  check bool' "winner before" true (List.mem {|winner("x")|} (actives res "winner"));
  let res', upd = update_exn (Chase.add_facts program res [ block ]) in
  check bool' "incremental path taken" true upd.Chase.upd_incremental;
  check int' "winner withdrawn" 0 (List.length (actives res' "winner"));
  check_matches_cold "negation disablement = cold chase" program res' [ cand; block ]

let test_incr_add_then_retract_roundtrip () =
  let base = [ edge "a" "b"; edge "b" "c" ] in
  let program, res = run_atoms tc_src base in
  let original = Database.fingerprint res.Chase.db in
  let res', _ = update_exn (Chase.add_facts program res [ edge "c" "a"; edge "b" "d" ]) in
  check bool' "grew" true (Database.fingerprint res'.Chase.db <> original);
  let res'', _ =
    update_exn (Chase.retract_facts program res' [ edge "c" "a"; edge "b" "d" ])
  in
  check string' "exact original fingerprint restored" original
    (Database.fingerprint res''.Chase.db)

let test_incr_retract_unknown_fact () =
  let program, res = run_atoms tc_src [ edge "a" "b" ] in
  let before = Database.fingerprint res.Chase.db in
  (match Chase.retract_facts program res [ edge "z" "q" ] with
  | Error (Chase.Unknown_fact _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "retracting an absent fact succeeded");
  check string' "state untouched by rejected update" before
    (Database.fingerprint res.Chase.db)

let test_incr_retract_derived_rejected () =
  let program, res = run_atoms tc_src [ edge "a" "b" ] in
  match Chase.retract_facts program res [ Atom.make "path" [ Term.str "a"; Term.str "b" ] ] with
  | Error (Chase.Invalid_edb _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "retracting a derived fact succeeded"

let test_incr_aggregation_falls_back () =
  let src = {|
own(X, Y, W), T = sum(W) -> total(Y, T).
@goal(total).
|}
  in
  let own x y w = Atom.make "own" [ Term.str x; Term.str y; Term.num w ] in
  let program, res = run_atoms src [ own "a" "c" 0.3; own "b" "c" 0.4 ] in
  let before = Database.fingerprint res.Chase.db in
  let res', upd = update_exn (Chase.retract_facts program res [ own "b" "c" 0.4 ]) in
  check bool' "fell back to full recompute" false upd.Chase.upd_incremental;
  check string' "input result untouched by fallback" before
    (Database.fingerprint res.Chase.db);
  check_matches_cold "fallback = cold chase" program res' [ own "a" "c" 0.3 ]

let test_incr_readd_makes_extensional () =
  (* asserting a tuple that is currently derived turns it extensional:
     retracting its former support no longer deletes it *)
  let program, res = run_atoms tc_src [ edge "a" "b"; edge "b" "c" ] in
  let path_ac = Atom.make "path" [ Term.str "a"; Term.str "c" ] in
  let res', _ = update_exn (Chase.add_facts program res [ path_ac ]) in
  let res'', _ = update_exn (Chase.retract_facts program res' [ edge "a" "b" ]) in
  check bool' "asserted fact survives support loss" true
    (List.mem {|path("a", "c")|} (actives res'' "path"));
  check bool' "dependent closure gone" true
    (not (List.mem {|path("a", "b")|} (actives res'' "path")))

let test_incr_update_budget_respected () =
  let program, res = run_atoms tc_src [ edge "a" "b" ] in
  let chain = List.init 60 (fun i -> edge (string_of_int i) (string_of_int (i + 1))) in
  match
    Chase.add_facts ~budget:(Chase.budget ~rounds:2 ()) program res chain
  with
  | Error (Chase.Budget_exceeded (`Rounds, p)) ->
    check bool' "partial rounds recorded" true (p.Chase.partial_rounds >= 1)
  | Error e -> Alcotest.failf "wrong error: %s" (Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "2-round budget survived a 60-edge chain closure"

let test_incr_inconsistent_detected () =
  let src = {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
path(X, X) -> false.
@goal(path).
|}
  in
  let program, res = run_atoms src [ edge "a" "b" ] in
  match Chase.add_facts program res [ edge "b" "a"; edge "b" "c" ] with
  | Error (Chase.Inconsistent _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "cycle admitted despite acyclicity constraint"

let test_copy_result_isolated () =
  (* the copy-on-write primitive the concurrent server builds on:
     updates through either side never show through the other *)
  let program, res = run_atoms tc_src [ edge "a" "b"; edge "b" "c" ] in
  let before = Database.fingerprint res.Chase.db in
  let copy = Chase.copy_result res in
  check string' "copy starts content-identical" before
    (Database.fingerprint copy.Chase.db);
  let copy', _ = update_exn (Chase.add_facts program copy [ edge "c" "d" ]) in
  check bool' "update visible through the copy" true
    (List.mem {|path("a", "d")|} (actives copy' "path"));
  check string' "original untouched by the copy's update" before
    (Database.fingerprint res.Chase.db);
  let copy_fp = Database.fingerprint copy'.Chase.db in
  let res', _ = update_exn (Chase.retract_facts program res [ edge "b" "c" ]) in
  check string' "copy untouched by the original's update" copy_fp
    (Database.fingerprint copy'.Chase.db);
  check_matches_cold "original's update = cold chase" program res'
    [ edge "a" "b" ];
  check_matches_cold "copy's update = cold chase" program copy'
    [ edge "a" "b"; edge "b" "c"; edge "c" "d" ]

let test_copy_result_isolates_inconsistency () =
  (* Inconsistent is detected only after mutation — the copy absorbs
     that mutation, the original stays servable *)
  let src = {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
path(X, X) -> false.
@goal(path).
|}
  in
  let program, res = run_atoms src [ edge "a" "b" ] in
  let before = Database.fingerprint res.Chase.db in
  (match Chase.add_facts program (Chase.copy_result res) [ edge "b" "a" ] with
  | Error (Chase.Inconsistent _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "cycle admitted despite acyclicity constraint");
  check string' "original untouched by the rejected update" before
    (Database.fingerprint res.Chase.db)

(* every active derived fact of an updated result must still carry a
   well-founded proof over active facts, grounded in the EDB *)
let proofs_well_founded (res : Chase.result) =
  List.for_all
    (fun (f : Fact.t) ->
      Provenance.is_edb res.Chase.prov f.Fact.id
      ||
      match Proof.of_fact res.Chase.db res.Chase.prov f with
      | None -> false
      | Some p ->
        let concluded = Hashtbl.create 16 in
        List.iter
          (fun (s : Proof.step) -> Hashtbl.replace concluded s.Proof.fact.Fact.id ())
          p.Proof.steps;
        List.for_all
          (fun (used : Fact.t) ->
            Database.is_active res.Chase.db used.Fact.id
            && (Hashtbl.mem concluded used.Fact.id
               || Provenance.is_edb res.Chase.prov used.Fact.id))
          (Proof.facts_used p))
    (Database.active_all res.Chase.db)

(* random edge set, then a random add/retract sequence: the maintained
   state must stay byte-identical (content fingerprint) to a cold chase
   of the final fact base, with well-founded provenance throughout *)
let prop_incremental_equals_cold =
  let gen =
    QCheck2.Gen.(pair edges_gen (list_size (int_range 1 6) (pair bool (pair (int_range 0 5) (int_range 0 5)))))
  in
  let print (raw, ops) =
    Printf.sprintf "base=[%s] ops=[%s]"
      (String.concat ";" (List.map (fun (i, j) -> Printf.sprintf "(%d,%d)" i j) raw))
      (String.concat ";"
         (List.map
            (fun (b, (i, j)) ->
              Printf.sprintf "%s(%d,%d)" (if b then "add" else "del") i j)
            ops))
  in
  QCheck2.Test.make ~print
    ~name:"incremental updates are byte-identical to cold chase"
    ~count:60 gen (fun (raw, ops) ->
      let atom (i, j) = edge (string_of_int i) (string_of_int j) in
      let { Parser.program; _ } = parse_exn tc_src in
      let base = List.map atom raw in
      match Chase.run program base with
      | Error _ -> false
      | Ok res ->
        let keys = Hashtbl.create 16 in
        List.iter (fun (i, j) -> Hashtbl.replace keys (i, j) ()) raw;
        let res = ref res and ok = ref true in
        List.iter
          (fun (is_add, ij) ->
            if !ok then
              if is_add || not (Hashtbl.mem keys ij) then begin
                Hashtbl.replace keys ij ();
                match Chase.add_facts program !res [ atom ij ] with
                | Ok (r, _) -> res := r
                | Error _ -> ok := false
              end
              else begin
                Hashtbl.remove keys ij;
                match Chase.retract_facts program !res [ atom ij ] with
                | Ok (r, _) -> res := r
                | Error _ -> ok := false
              end)
          ops;
        !ok
        &&
        let final_base =
          Hashtbl.fold (fun ij () acc -> atom ij :: acc) keys []
        in
        match Chase.run program final_base with
        | Error _ -> false
        | Ok cold ->
          Database.fingerprint cold.Chase.db = Database.fingerprint !res.Chase.db
          && proofs_well_founded !res)

(* same invariant through the stratified-negation path *)
let prop_incremental_negation_equals_cold =
  let gen =
    QCheck2.Gen.(pair edges_gen (list_size (int_range 1 5) (pair bool (int_range 0 5))))
  in
  QCheck2.Test.make
    ~name:"incremental updates respect stratified negation" ~count:60 gen
    (fun (raw, ops) ->
      let src = {|
e(X, Y) -> linked(X).
node(X), not linked(X) -> isolated(X).
@goal(isolated).
|}
      in
      let { Parser.program; _ } = parse_exn src in
      let node i = Atom.make "node" [ Term.str (string_of_int i) ] in
      let atom (i, j) = edge (string_of_int i) (string_of_int j) in
      let base = List.init 6 node @ List.map atom raw in
      match Chase.run program base with
      | Error _ -> false
      | Ok res ->
        let keys = Hashtbl.create 16 in
        List.iter (fun ij -> Hashtbl.replace keys ij ()) raw;
        let res = ref res and ok = ref true in
        List.iter
          (fun (is_add, i) ->
            if !ok then begin
              let ij = (i, (i + 1) mod 6) in
              if is_add || not (Hashtbl.mem keys ij) then begin
                Hashtbl.replace keys ij ();
                match Chase.add_facts program !res [ atom ij ] with
                | Ok (r, _) -> res := r
                | Error _ -> ok := false
              end
              else begin
                Hashtbl.remove keys ij;
                match Chase.retract_facts program !res [ atom ij ] with
                | Ok (r, _) -> res := r
                | Error _ -> ok := false
              end
            end)
          ops;
        !ok
        &&
        let final_base =
          List.init 6 node @ Hashtbl.fold (fun ij () acc -> atom ij :: acc) keys []
        in
        match Chase.run program final_base with
        | Error _ -> false
        | Ok cold ->
          Database.fingerprint cold.Chase.db = Database.fingerprint !res.Chase.db)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_closure_matches_reference;
      prop_chase_deterministic;
      prop_magic_equals_full_chase;
      prop_query_lane_equals_materialization;
      prop_parallel_equals_sequential;
      prop_join_engines_agree_plain;
      prop_join_engines_agree_negation;
      prop_join_engines_agree_naive;
      prop_unlimited_budget_is_identity;
      prop_incremental_equals_cold;
      prop_incremental_negation_equals_cold;
    ]

let () =
  Alcotest.run "engine"
    [
      ( "database",
        [
          Alcotest.test_case "dedup" `Quick test_database_dedup;
          Alcotest.test_case "numeric key equality" `Quick
            test_database_numeric_key_equality;
          Alcotest.test_case "deactivation" `Quick test_database_deactivation;
          Alcotest.test_case "matching" `Quick test_database_matching;
          Alcotest.test_case "columnar layout" `Quick
            test_database_columnar_layout;
          Alcotest.test_case "index build and probe" `Quick
            test_database_index_probe;
          Alcotest.test_case "all-active fast path" `Quick
            test_database_all_active;
        ] );
      ( "chase",
        [
          Alcotest.test_case "transitive closure" `Quick test_chase_transitive_closure;
          Alcotest.test_case "set semantics" `Quick test_chase_set_semantics;
          Alcotest.test_case "joins and conditions" `Quick test_chase_joins_and_conditions;
          Alcotest.test_case "arithmetic assignment" `Quick
            test_chase_arithmetic_assignment;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "grouped sums" `Quick test_chase_sum_groups;
          Alcotest.test_case "all functions" `Quick test_chase_agg_functions;
          Alcotest.test_case "monotonic supersession" `Quick
            test_chase_monotonic_aggregation_supersedes;
          Alcotest.test_case "condition on result" `Quick
            test_chase_agg_condition_on_result;
          Alcotest.test_case "multiple contributors" `Quick
            test_chase_agg_multi_contributors;
          Alcotest.test_case "deferred condition body vars" `Quick
            test_chase_agg_body_vars_in_deferred_condition;
        ] );
      ( "negation",
        [
          Alcotest.test_case "stratified" `Quick test_chase_stratified_negation;
          Alcotest.test_case "three strata" `Quick test_chase_three_strata;
          Alcotest.test_case "unstratifiable rejected" `Quick
            test_chase_unstratifiable_rejected;
        ] );
      ( "existentials",
        [
          Alcotest.test_case "labelled nulls" `Quick test_chase_existential_nulls;
          Alcotest.test_case "isomorphism preemption" `Quick
            test_chase_isomorphism_preemption;
          Alcotest.test_case "satisfied by data" `Quick
            test_chase_existential_satisfied_by_data;
        ] );
      ( "termination",
        [ Alcotest.test_case "max rounds guard" `Quick test_chase_max_rounds ] );
      ( "budgets",
        [
          Alcotest.test_case "round budget" `Quick test_budget_rounds;
          Alcotest.test_case "fact budget" `Quick test_budget_facts;
          Alcotest.test_case "cancel hook" `Quick test_budget_cancel;
          Alcotest.test_case "deadline trips mid-match" `Quick
            test_budget_deadline_trips_mid_match;
          Alcotest.test_case "converging run unaffected" `Quick
            test_budget_converging_run_unaffected;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "add warm-starts semi-naive" `Quick
            test_incr_add_warm_start;
          Alcotest.test_case "retract deletes the cone" `Quick test_incr_retract_cone;
          Alcotest.test_case "alternative derivation survives" `Quick
            test_incr_retract_alternative_derivation_survives;
          Alcotest.test_case "retraction enables negation" `Quick
            test_incr_retraction_enables_negation;
          Alcotest.test_case "addition disables negation" `Quick
            test_incr_addition_disables_negation;
          Alcotest.test_case "add-then-retract round trip" `Quick
            test_incr_add_then_retract_roundtrip;
          Alcotest.test_case "unknown fact rejected" `Quick
            test_incr_retract_unknown_fact;
          Alcotest.test_case "derived fact rejected" `Quick
            test_incr_retract_derived_rejected;
          Alcotest.test_case "aggregation falls back" `Quick
            test_incr_aggregation_falls_back;
          Alcotest.test_case "re-add makes extensional" `Quick
            test_incr_readd_makes_extensional;
          Alcotest.test_case "update budget respected" `Quick
            test_incr_update_budget_respected;
          Alcotest.test_case "inconsistency detected" `Quick
            test_incr_inconsistent_detected;
          Alcotest.test_case "copy_result isolates updates" `Quick
            test_copy_result_isolated;
          Alcotest.test_case "copy_result isolates inconsistency" `Quick
            test_copy_result_isolates_inconsistency;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "violation rejected" `Quick test_constraint_violation;
          Alcotest.test_case "satisfied accepted" `Quick test_constraint_satisfied;
          Alcotest.test_case "with negation" `Quick test_constraint_with_negation;
        ] );
      ( "export",
        [
          Alcotest.test_case "proof dot" `Quick test_export_proof_dot;
          Alcotest.test_case "chase graph dot" `Quick test_export_chase_graph_dot;
          Alcotest.test_case "instance dot" `Quick test_export_instance_dot;
        ] );
      ( "why-provenance",
        [
          Alcotest.test_case "single witness" `Quick test_why_single_witness;
          Alcotest.test_case "alternative witnesses" `Quick
            test_why_alternative_witnesses;
          Alcotest.test_case "minimality" `Quick test_why_minimality;
          Alcotest.test_case "EDB is its own witness" `Quick test_why_edb_is_itself;
        ] );
      ( "magic",
        [
          Alcotest.test_case "prunes" `Quick test_magic_prunes;
          Alcotest.test_case "adornments" `Quick test_magic_adornments;
          Alcotest.test_case "bad queries rejected" `Quick test_magic_rejects_bad_queries;
          Alcotest.test_case "aggregation prunes" `Quick test_magic_prunes_aggregation;
          Alcotest.test_case "negation prunes" `Quick test_magic_negation;
          Alcotest.test_case "constraints fire on the scoped instance" `Quick
            test_magic_detects_inconsistency;
          Alcotest.test_case "all-free mask" `Quick test_magic_free_mask;
          Alcotest.test_case "existential heads fall back" `Quick
            test_magic_existential_falls_back;
          Alcotest.test_case "unadorn proof" `Quick test_magic_unadorn_proof;
        ] );
      ( "io",
        [
          Alcotest.test_case "csv parsing" `Quick test_csv_parsing;
          Alcotest.test_case "csv arity mismatch" `Quick test_csv_arity_mismatch;
          Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
          Alcotest.test_case "load directory" `Quick test_load_directory;
          Alcotest.test_case "json export" `Quick test_json_export;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "well-formed" `Quick test_provenance_well_formed;
          Alcotest.test_case "tau order" `Quick test_proof_tau_order;
          Alcotest.test_case "constants" `Quick test_proof_constants;
          Alcotest.test_case "alternative derivations" `Quick
            test_alternative_derivations_recorded;
          Alcotest.test_case "shortest proof selection" `Quick
            test_shortest_proof_selection;
          Alcotest.test_case "shortest = primary when unique" `Quick
            test_shortest_equals_primary_when_unique;
          Alcotest.test_case "truncate" `Quick test_proof_truncate;
          Alcotest.test_case "EDB has no proof" `Quick test_proof_edb_fact_has_none;
        ] );
      ("query", [ Alcotest.test_case "patterns" `Quick test_query_patterns ]);
      ( "parallel",
        [
          Alcotest.test_case "intvec" `Quick test_intvec;
          Alcotest.test_case "symtab" `Quick test_symtab;
          Alcotest.test_case "plan ordering" `Quick test_plan_ordering;
          Alcotest.test_case "exists_matching" `Quick test_exists_matching;
          Alcotest.test_case "pred_card" `Quick test_pred_card;
          Alcotest.test_case "par map" `Quick test_par_map;
          Alcotest.test_case "bundled apps bit-identical" `Quick
            test_parallel_identical_on_bundled_apps;
          Alcotest.test_case "naive = semi-naive under planner" `Quick
            test_naive_matches_seminaive_under_planner;
          Alcotest.test_case "join engines byte-identical" `Quick
            test_join_engines_identical_all_features;
        ] );
      ("properties", qsuite);
    ]
