(* Tests for the observability library (ekg_obs): histogram quantile
   edge cases, Prometheus escaping and registry rendering, counter
   thread-safety across domains, span nesting and ring eviction, the
   JSONL trace export, and the chase profiler wired through ?stats. *)

open Ekg_obs

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int
let string' = Alcotest.string
let float' = Alcotest.float 1e-6

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec at i =
    if i + nl > hl then false
    else String.sub haystack i nl = needle || at (i + 1)
  in
  nl = 0 || at 0

(* --- histogram ------------------------------------------------------------- *)

let test_hist_quantile_edges () =
  let h = Hist.create () in
  check float' "empty histogram" 0. (Hist.quantile h 0.5);
  Hist.observe_ms h 0.02;
  (* the first bucket's bound is 0.05 ms, but a singleton histogram
     must clamp the estimate to its one observation *)
  check float' "singleton clamps to observed max" 0.02 (Hist.quantile h 0.5);
  check float' "q <= 0 estimates the smallest" 0.02 (Hist.quantile h 0.);
  check float' "q >= 1 estimates the largest" 0.02 (Hist.quantile h 2.);
  Hist.observe_ms h 0.2;
  (* rank 2 is reached in the (0.1, 0.25] bucket; 0.25 clamps to 0.2 *)
  check float' "bucket bound clamps to max" 0.2 (Hist.quantile h 1.);
  Hist.observe_ms h 60000.;
  check float' "overflow bucket reports the max" 60000. (Hist.quantile h 0.999);
  check int' "count" 3 (Hist.count h);
  check float' "max" 60000. (Hist.max_ms h)

let test_hist_cumulative () =
  let h = Hist.create () in
  Hist.observe_ms h 0.04;
  Hist.observe_ms h 0.07;
  Hist.observe_ms h 99999.;
  let cum = Hist.cumulative h in
  check int' "one entry per finite bucket" (Array.length Hist.bounds)
    (List.length cum);
  (match cum with
  | (b0, c0) :: (b1, c1) :: _ ->
    check float' "first bound" 0.05 b0;
    check int' "first cumulative" 1 c0;
    check float' "second bound" 0.1 b1;
    check int' "second cumulative" 2 c1
  | _ -> Alcotest.fail "no buckets");
  check int' "finite buckets exclude the overflow" 2
    (snd (List.nth cum (List.length cum - 1)));
  check int' "count includes the overflow" 3 (Hist.count h)

(* --- prometheus rendering --------------------------------------------------- *)

let test_prom_escaping () =
  check string' "label value escaping" "a\\\\b\\\"c\\nd"
    (Prom.escape_label "a\\b\"c\nd");
  check string' "integral sample" "42" (Prom.number 42.);
  check string' "+Inf" "+Inf" (Prom.number infinity);
  check string' "NaN" "NaN" (Prom.number Float.nan);
  let buf = Buffer.create 64 in
  Prom.header buf ~name:"m_total" ~help:"line1\nline2" ~typ:"counter";
  Prom.sample buf ~name:"m_total" ~labels:[ "k", "v\"w" ] 1.;
  let out = Buffer.contents buf in
  check bool' "help newline escaped" true (contains out "line1\\nline2");
  check bool' "type line" true (contains out "# TYPE m_total counter");
  check bool' "labeled sample" true (contains out "m_total{k=\"v\\\"w\"} 1")

let test_metrics_registry () =
  let m = Metrics.create () in
  check bool' "enabled" true (Metrics.enabled m);
  Metrics.incr m ~help:"a test counter" "t_total";
  Metrics.add m "t_total" 2.;
  Metrics.set m ~labels:[ "k", "v" ] "t_gauge" 5.;
  Metrics.observe m "t_lat" 0.001;
  Metrics.declare_counter m ~help:"pre-declared" "pre_total";
  check
    Alcotest.(option (float 1e-9))
    "counter accumulates" (Some 3.) (Metrics.value m "t_total");
  check
    Alcotest.(option (float 1e-9))
    "declared counter reads zero" (Some 0.)
    (Metrics.value m "pre_total");
  let out = Metrics.to_prometheus m in
  check bool' "help line" true (contains out "# HELP t_total a test counter");
  check bool' "counter sample" true (contains out "t_total 3");
  check bool' "labeled gauge" true (contains out "t_gauge{k=\"v\"} 5");
  check bool' "histogram bucket" true (contains out "t_lat_bucket{le=\"1\"} 1");
  check bool' "histogram +Inf bucket" true
    (contains out "t_lat_bucket{le=\"+Inf\"} 1");
  check bool' "histogram count" true (contains out "t_lat_count 1");
  check bool' "declared series present before traffic" true
    (contains out "pre_total 0")

let test_metrics_noop () =
  let m = Metrics.noop () in
  check bool' "disabled" false (Metrics.enabled m);
  Metrics.incr m "x_total";
  Metrics.observe m "x_lat" 0.1;
  check Alcotest.(option (float 0.)) "nothing recorded" None
    (Metrics.value m "x_total");
  check string' "renders nothing" "" (Metrics.to_prometheus m)

let test_counter_thread_safety () =
  let m = Metrics.create () in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr m "race_total"
            done))
  in
  List.iter Domain.join domains;
  check
    Alcotest.(option (float 0.))
    "all increments survive concurrent domains"
    (Some (float_of_int (4 * per_domain)))
    (Metrics.value m "race_total")

(* --- spans ------------------------------------------------------------------ *)

let test_span_nesting () =
  let t = Trace.create () in
  let result =
    Trace.with_span t "root" (fun root ->
        Trace.with_span t ~parent:root "child-a" (fun _ -> ());
        Trace.with_span t ~parent:root "child-b" (fun sp ->
            Trace.label sp "k" "v");
        17)
  in
  check int' "body result returned" 17 result;
  match Trace.recent t with
  | [ root ] -> (
    check string' "root name" "root" root.Trace.name;
    let flat = Trace.flatten root in
    check int' "three spans" 3 (List.length flat);
    match flat with
    | [ (0, r); (1, a); (1, b) ] ->
      check string' "children in start order" "child-a" a.Trace.name;
      check string' "second child" "child-b" b.Trace.name;
      check bool' "label attached" true (List.mem_assoc "k" b.Trace.labels);
      check bool' "parent covers children" true
        (Trace.duration_ms r
        >= Trace.duration_ms a +. Trace.duration_ms b -. 0.001);
      check bool' "self time non-negative" true (Trace.self_ms r >= 0.)
    | _ -> Alcotest.fail "unexpected flatten shape")
  | l -> Alcotest.failf "expected one trace, got %d" (List.length l)

let test_ring_eviction () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.with_span t (Printf.sprintf "s%d" i) (fun _ -> ())
  done;
  check
    Alcotest.(list string)
    "newest first, oldest evicted" [ "s5"; "s4"; "s3" ]
    (List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.recent t))

let test_span_exception_and_hook () =
  let finished = ref [] in
  let t =
    Trace.create
      ~on_finish:(fun sp -> finished := sp.Trace.name :: !finished)
      ()
  in
  (try Trace.with_span t "boom" (fun _ -> raise Exit) with Exit -> ());
  check Alcotest.(list string) "hook ran on raise" [ "boom" ] !finished;
  (match Trace.recent t with
  | [ sp ] -> check bool' "duration set on raise" true (sp.Trace.dur_s >= 0.)
  | _ -> Alcotest.fail "span not pushed on raise");
  check int' "with_span_opt None runs uninstrumented" 3
    (Trace.with_span_opt None "x" (fun sp ->
         check bool' "no span materialized" true (sp = None);
         3))

let test_trace_ids_unique () =
  let t = Trace.create () in
  let ids = List.init 100 (fun _ -> Trace.next_trace_id t) in
  check int' "100 unique ids" 100
    (List.length (List.sort_uniq compare ids))

let test_jsonl_export () =
  let t = Trace.create () in
  Trace.with_span t "a\"b" (fun root ->
      Trace.with_span t ~parent:root "inner" (fun _ -> ()));
  Trace.with_span t ~labels:[ "q", "control" ] "second" (fun _ -> ());
  let out = Trace.jsonl t in
  let lines = String.split_on_char '\n' (String.trim out) in
  check int' "one line per trace" 2 (List.length lines);
  let first = List.nth lines 0 and second = List.nth lines 1 in
  check bool' "oldest first, name escaped" true
    (contains first {|"name":"a\"b"|});
  check bool' "root carries absolute start" true
    (contains first {|"start_unix_s"|});
  check bool' "children carry relative offsets" true
    (contains first {|"offset_ms"|});
  check bool' "labels serialized" true
    (contains second {|"labels":{"q":"control"}|})

(* --- chase profiling -------------------------------------------------------- *)

let parse_exn src =
  match Ekg_datalog.Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse: %s" e

let control_program =
  {|
sigma1: own(X, Y, S), S > 0.5 -> control(X, Y).
sigma3: control(X, Z), own(Z, Y, S), TS = sum(S), TS > 0.5 -> control(X, Y).
@goal(control).
own("A", "B", 0.6).
own("B", "C", 0.7).
|}

let test_chase_stats () =
  let { Ekg_datalog.Parser.program; facts } = parse_exn control_program in
  let sink = Metrics.create () in
  match Ekg_engine.Chase.run_checked ~stats:sink program facts with
  | Error _ -> Alcotest.fail "chase failed"
  | Ok result ->
    (match result.stats with
    | None -> Alcotest.fail "stats not collected"
    | Some s ->
      check bool' "one stat per rule" true (List.length s.per_rule >= 2);
      check bool' "rule ids preserved" true
        (List.exists
           (fun (r : Ekg_engine.Chase.rule_stat) -> r.rule_id = "sigma1")
           s.per_rule);
      check bool' "per-round entries" true (s.per_round <> []);
      check int' "single stratum" 1 (List.length s.rounds_per_stratum);
      check int' "stratum rounds match total" result.rounds
        (List.fold_left ( + ) 0 s.rounds_per_stratum);
      let facts_by_rule =
        List.fold_left
          (fun acc (r : Ekg_engine.Chase.rule_stat) -> acc + r.facts)
          0 s.per_rule
      in
      check bool' "rules account for the derived facts" true
        (facts_by_rule >= result.derived_count);
      check bool' "wall clock recorded" true (s.wall_s >= 0.));
    check
      Alcotest.(option (float 0.))
      "rounds pushed to the sink"
      (Some (float_of_int result.rounds))
      (Metrics.value sink "ekg_chase_rounds_total");
    check
      Alcotest.(option (float 0.))
      "run counted" (Some 1.)
      (Metrics.value sink "ekg_chase_runs_total");
    check bool' "per-rule series labeled" true
      (contains
         (Metrics.to_prometheus sink)
         {|ekg_chase_rule_facts_total{rule="sigma1",stratum="0"}|})

let test_chase_noop_sink () =
  let { Ekg_datalog.Parser.program; facts } = parse_exn control_program in
  match Ekg_engine.Chase.run_checked ~stats:(Metrics.noop ()) program facts with
  | Error _ -> Alcotest.fail "chase failed"
  | Ok result ->
    check bool' "disabled sink disables collection" true (result.stats = None)

let test_divergent_diagnostic () =
  let { Ekg_datalog.Parser.program; facts } =
    parse_exn {|
step: n(X), Y = X + 1, Y < 1000000 -> n(Y).
@goal(n).
n(0).
|}
  in
  match Ekg_engine.Chase.run_checked ~max_rounds:5 program facts with
  | Error (Ekg_engine.Chase.Divergent d as e) ->
    check int' "bound echoed" 5 d.max_rounds;
    let msg = Ekg_engine.Chase.error_to_string e in
    check bool' "message names the bound" true (contains msg "5 rounds");
    check bool' "message breaks rounds down by stratum" true
      (contains msg "rounds per stratum");
    check bool' "per-stratum counts present" true (contains msg "#1=")
  | Error _ -> Alcotest.fail "wrong error constructor"
  | Ok _ -> Alcotest.fail "divergent program terminated"

(* --- pipeline instrumentation ----------------------------------------------- *)

let test_pipeline_spans () =
  let t = Trace.create () in
  match Ekg_apps.Bundled.load ~obs:t "company-control" with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok _ -> (
    match Trace.recent t with
    | [ root ] ->
      check string' "root span" "pipeline-build" root.Trace.name;
      let names =
        List.map (fun (_, s) -> s.Trace.name) (Trace.flatten root)
      in
      List.iter
        (fun stage -> check bool' stage true (List.mem stage names))
        [
          "structural-analysis";
          "depgraph";
          "critical-nodes";
          "path-extraction";
          "verbalization";
          "enhancement";
        ]
    | l -> Alcotest.failf "expected one build trace, got %d" (List.length l))

(* --------------------------------------------------------------------------- *)

let () =
  Alcotest.run "ekg_obs"
    [
      ( "hist",
        [
          Alcotest.test_case "quantile edges" `Quick test_hist_quantile_edges;
          Alcotest.test_case "cumulative buckets" `Quick test_hist_cumulative;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "escaping" `Quick test_prom_escaping;
          Alcotest.test_case "registry rendering" `Quick test_metrics_registry;
          Alcotest.test_case "noop registry" `Quick test_metrics_noop;
          Alcotest.test_case "counter thread-safety" `Quick
            test_counter_thread_safety;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "exception + hook" `Quick
            test_span_exception_and_hook;
          Alcotest.test_case "trace ids unique" `Quick test_trace_ids_unique;
          Alcotest.test_case "jsonl export" `Quick test_jsonl_export;
        ] );
      ( "chase profiling",
        [
          Alcotest.test_case "stats + series" `Quick test_chase_stats;
          Alcotest.test_case "noop sink" `Quick test_chase_noop_sink;
          Alcotest.test_case "divergent diagnostic" `Quick
            test_divergent_diagnostic;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "build spans" `Quick test_pipeline_spans ] );
    ]
