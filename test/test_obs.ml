(* Tests for the observability library (ekg_obs): histogram quantile
   edge cases, Prometheus escaping and registry rendering, counter
   thread-safety across domains, span nesting and ring eviction, the
   JSONL trace export, and the chase profiler wired through ?stats. *)

open Ekg_obs

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int
let string' = Alcotest.string
let float' = Alcotest.float 1e-6

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec at i =
    if i + nl > hl then false
    else String.sub haystack i nl = needle || at (i + 1)
  in
  nl = 0 || at 0

(* --- histogram ------------------------------------------------------------- *)

let test_hist_quantile_edges () =
  let h = Hist.create () in
  check float' "empty histogram" 0. (Hist.quantile h 0.5);
  Hist.observe_ms h 0.02;
  (* the first bucket's bound is 0.05 ms, but a singleton histogram
     must clamp the estimate to its one observation *)
  check float' "singleton clamps to observed max" 0.02 (Hist.quantile h 0.5);
  check float' "q <= 0 estimates the smallest" 0.02 (Hist.quantile h 0.);
  check float' "q >= 1 estimates the largest" 0.02 (Hist.quantile h 2.);
  Hist.observe_ms h 0.2;
  (* rank 2 is reached in the (0.1, 0.25] bucket; 0.25 clamps to 0.2 *)
  check float' "bucket bound clamps to max" 0.2 (Hist.quantile h 1.);
  Hist.observe_ms h 60000.;
  check float' "overflow bucket reports the max" 60000. (Hist.quantile h 0.999);
  check int' "count" 3 (Hist.count h);
  check float' "max" 60000. (Hist.max_ms h)

let test_hist_cumulative () =
  let h = Hist.create () in
  Hist.observe_ms h 0.04;
  Hist.observe_ms h 0.07;
  Hist.observe_ms h 99999.;
  let cum = Hist.cumulative h in
  check int' "one entry per finite bucket" (Array.length Hist.bounds)
    (List.length cum);
  (match cum with
  | (b0, c0) :: (b1, c1) :: _ ->
    check float' "first bound" 0.05 b0;
    check int' "first cumulative" 1 c0;
    check float' "second bound" 0.1 b1;
    check int' "second cumulative" 2 c1
  | _ -> Alcotest.fail "no buckets");
  check int' "finite buckets exclude the overflow" 2
    (snd (List.nth cum (List.length cum - 1)));
  check int' "count includes the overflow" 3 (Hist.count h)

(* --- prometheus rendering --------------------------------------------------- *)

let test_prom_escaping () =
  check string' "label value escaping" "a\\\\b\\\"c\\nd"
    (Prom.escape_label "a\\b\"c\nd");
  check string' "integral sample" "42" (Prom.number 42.);
  check string' "+Inf" "+Inf" (Prom.number infinity);
  check string' "NaN" "NaN" (Prom.number Float.nan);
  let buf = Buffer.create 64 in
  Prom.header buf ~name:"m_total" ~help:"line1\nline2" ~typ:"counter";
  Prom.sample buf ~name:"m_total" ~labels:[ "k", "v\"w" ] 1.;
  let out = Buffer.contents buf in
  check bool' "help newline escaped" true (contains out "line1\\nline2");
  check bool' "type line" true (contains out "# TYPE m_total counter");
  check bool' "labeled sample" true (contains out "m_total{k=\"v\\\"w\"} 1")

let test_metrics_registry () =
  let m = Metrics.create () in
  check bool' "enabled" true (Metrics.enabled m);
  Metrics.incr m ~help:"a test counter" "t_total";
  Metrics.add m "t_total" 2.;
  Metrics.set m ~labels:[ "k", "v" ] "t_gauge" 5.;
  Metrics.observe m "t_lat" 0.001;
  Metrics.declare_counter m ~help:"pre-declared" "pre_total";
  check
    Alcotest.(option (float 1e-9))
    "counter accumulates" (Some 3.) (Metrics.value m "t_total");
  check
    Alcotest.(option (float 1e-9))
    "declared counter reads zero" (Some 0.)
    (Metrics.value m "pre_total");
  let out = Metrics.to_prometheus m in
  check bool' "help line" true (contains out "# HELP t_total a test counter");
  check bool' "counter sample" true (contains out "t_total 3");
  check bool' "labeled gauge" true (contains out "t_gauge{k=\"v\"} 5");
  check bool' "histogram bucket" true (contains out "t_lat_bucket{le=\"1\"} 1");
  check bool' "histogram +Inf bucket" true
    (contains out "t_lat_bucket{le=\"+Inf\"} 1");
  check bool' "histogram count" true (contains out "t_lat_count 1");
  check bool' "declared series present before traffic" true
    (contains out "pre_total 0")

let test_metrics_noop () =
  let m = Metrics.noop () in
  check bool' "disabled" false (Metrics.enabled m);
  Metrics.incr m "x_total";
  Metrics.observe m "x_lat" 0.1;
  check Alcotest.(option (float 0.)) "nothing recorded" None
    (Metrics.value m "x_total");
  check string' "renders nothing" "" (Metrics.to_prometheus m)

let test_counter_thread_safety () =
  let m = Metrics.create () in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr m "race_total"
            done))
  in
  List.iter Domain.join domains;
  check
    Alcotest.(option (float 0.))
    "all increments survive concurrent domains"
    (Some (float_of_int (4 * per_domain)))
    (Metrics.value m "race_total")

(* --- spans ------------------------------------------------------------------ *)

let test_span_nesting () =
  let t = Trace.create () in
  let result =
    Trace.with_span t "root" (fun root ->
        Trace.with_span t ~parent:root "child-a" (fun _ -> ());
        Trace.with_span t ~parent:root "child-b" (fun sp ->
            Trace.label sp "k" "v");
        17)
  in
  check int' "body result returned" 17 result;
  match Trace.recent t with
  | [ root ] -> (
    check string' "root name" "root" root.Trace.name;
    let flat = Trace.flatten root in
    check int' "three spans" 3 (List.length flat);
    match flat with
    | [ (0, r); (1, a); (1, b) ] ->
      check string' "children in start order" "child-a" a.Trace.name;
      check string' "second child" "child-b" b.Trace.name;
      check bool' "label attached" true (List.mem_assoc "k" b.Trace.labels);
      check bool' "parent covers children" true
        (Trace.duration_ms r
        >= Trace.duration_ms a +. Trace.duration_ms b -. 0.001);
      check bool' "self time non-negative" true (Trace.self_ms r >= 0.)
    | _ -> Alcotest.fail "unexpected flatten shape")
  | l -> Alcotest.failf "expected one trace, got %d" (List.length l)

let test_ring_eviction () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.with_span t (Printf.sprintf "s%d" i) (fun _ -> ())
  done;
  check
    Alcotest.(list string)
    "newest first, oldest evicted" [ "s5"; "s4"; "s3" ]
    (List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.recent t))

let test_span_exception_and_hook () =
  let finished = ref [] in
  let t =
    Trace.create
      ~on_finish:(fun sp -> finished := sp.Trace.name :: !finished)
      ()
  in
  (try Trace.with_span t "boom" (fun _ -> raise Exit) with Exit -> ());
  check Alcotest.(list string) "hook ran on raise" [ "boom" ] !finished;
  (match Trace.recent t with
  | [ sp ] -> check bool' "duration set on raise" true (sp.Trace.dur_s >= 0.)
  | _ -> Alcotest.fail "span not pushed on raise");
  check int' "with_span_opt None runs uninstrumented" 3
    (Trace.with_span_opt None "x" (fun sp ->
         check bool' "no span materialized" true (sp = None);
         3))

let test_trace_ids_unique () =
  let t = Trace.create () in
  let ids = List.init 100 (fun _ -> Trace.next_trace_id t) in
  check int' "100 unique ids" 100
    (List.length (List.sort_uniq compare ids))

let test_jsonl_export () =
  let t = Trace.create () in
  Trace.with_span t "a\"b" (fun root ->
      Trace.with_span t ~parent:root "inner" (fun _ -> ()));
  Trace.with_span t ~labels:[ "q", "control" ] "second" (fun _ -> ());
  let out = Trace.jsonl t in
  let lines = String.split_on_char '\n' (String.trim out) in
  check int' "one line per trace" 2 (List.length lines);
  let first = List.nth lines 0 and second = List.nth lines 1 in
  check bool' "oldest first, name escaped" true
    (contains first {|"name":"a\"b"|});
  check bool' "root carries absolute start" true
    (contains first {|"start_unix_s"|});
  check bool' "children carry relative offsets" true
    (contains first {|"offset_ms"|});
  check bool' "labels serialized" true
    (contains second {|"labels":{"q":"control"}|})

(* --- structured log --------------------------------------------------------- *)

let parse_json line =
  match Ekg_server.Json.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "log line is not JSON (%s): %s" e line

let capturing_log ?level ?slow_threshold_ms ?slow_capacity () =
  let lines = ref [] in
  let log =
    Log.create ?level ?slow_threshold_ms ?slow_capacity
      ~sink:(fun l -> lines := l :: !lines)
      ()
  in
  log, fun () -> List.rev !lines

let test_log_level_filtering () =
  let log, lines = capturing_log ~level:Log.Warn () in
  check bool' "would_log error" true (Log.would_log log Log.Error);
  check bool' "would not log info" false (Log.would_log log Log.Info);
  Log.debug log "d" [];
  Log.info log "i" [];
  Log.warn log "w" [];
  Log.error log "e" [];
  check int' "only warn+error forwarded" 2 (List.length (lines ()));
  check int' "emitted counts forwarded events" 2 (Log.emitted log);
  Log.set_level log Log.Debug;
  Log.debug log "d2" [];
  check int' "lowered level admits debug" 3 (List.length (lines ()))

let test_log_jsonl_shape () =
  let open Ekg_server in
  let log, lines = capturing_log ~level:Log.Debug () in
  Log.event log ~duration_ms:12.5 Log.Info "request"
    [
      "trace_id", Log.Str "t-1";
      "path", Log.Str "a\"b\\c";
      "status", Log.Int 200;
      "wait_ms", Log.Float 1.25;
      "cache_hit", Log.Bool true;
    ];
  match lines () with
  | [ line ] ->
    let j = parse_json line in
    check bool' "ts is a number" true
      (match Json.member "ts" j with Some (Json.Num _) -> true | _ -> false);
    check bool' "level" true (Json.mem_str "level" j = Some "info");
    check bool' "event name" true (Json.mem_str "event" j = Some "request");
    check bool' "duration" true
      (match Json.member "duration_ms" j with
      | Some (Json.Num d) -> Float.abs (d -. 12.5) < 1e-9
      | _ -> false);
    check bool' "string field escaped + round-trips" true
      (Json.mem_str "path" j = Some "a\"b\\c");
    check bool' "int field" true (Json.mem_int "status" j = Some 200);
    check bool' "float field" true
      (match Json.member "wait_ms" j with
      | Some (Json.Num f) -> Float.abs (f -. 1.25) < 1e-9
      | _ -> false);
    check bool' "bool field" true (Json.mem_bool "cache_hit" j = Some true)
  | l -> Alcotest.failf "expected one line, got %d" (List.length l)

let test_log_slow_ring () =
  (* level Error: the sink sees nothing, yet the ring must still fill —
     raising the log level cannot blind the slowlog *)
  let log, lines =
    capturing_log ~level:Log.Error ~slow_threshold_ms:10. ~slow_capacity:2 ()
  in
  Log.event log ~duration_ms:5. Log.Info "fast" [];
  Log.event log ~duration_ms:20. Log.Info "slow1" [];
  Log.event log ~duration_ms:30. Log.Info "slow2" [];
  Log.event log ~duration_ms:40. Log.Info "slow3" [];
  check int' "sink saw nothing" 0 (List.length (lines ()));
  (match Log.slow_entries log with
  | [ a; b ] ->
    check string' "newest first" "slow3" a.Log.e_event;
    check string' "capacity evicts oldest" "slow2" b.Log.e_event;
    check bool' "duration kept" true (a.Log.e_duration_ms = 40.)
  | l -> Alcotest.failf "expected 2 ring entries, got %d" (List.length l));
  let noop = Log.noop () in
  Log.event noop ~duration_ms:100. Log.Error "x" [];
  check int' "noop logger emits nothing" 0 (Log.emitted noop);
  check int' "noop logger captures nothing" 0
    (List.length (Log.slow_entries noop))

let test_log_ctx () =
  check bool' "inactive outside a scope" false (Log.Ctx.active ());
  Log.Ctx.put "orphan" (Log.Str "dropped");
  (* no scope open: the put above must be a silent no-op *)
  let (), fields =
    Log.Ctx.collect (fun () ->
        check bool' "active inside" true (Log.Ctx.active ());
        Log.Ctx.put "first" (Log.Int 1);
        Log.Ctx.put "second" (Log.Str "a");
        Log.Ctx.put "first" (Log.Int 2);
        (* overwrite: last value, original position *)
        Log.Ctx.add "acc" 1.5;
        Log.Ctx.add "acc" 2.5)
  in
  check bool' "orphan put did not leak in" true
    (not (List.mem_assoc "orphan" fields));
  (match fields with
  | [ ("first", Log.Int 2); ("second", Log.Str "a"); ("acc", Log.Float a) ] ->
    check float' "add accumulates" 4. a
  | _ -> Alcotest.fail "unexpected field list shape");
  (* nesting: the inner scope shadows the outer for its duration *)
  let (_, inner), outer =
    Log.Ctx.collect (fun () ->
        Log.Ctx.put "outer" (Log.Bool true);
        Log.Ctx.collect (fun () -> Log.Ctx.put "inner" (Log.Bool true)))
  in
  check bool' "inner field captured by inner scope" true
    (List.mem_assoc "inner" inner);
  check bool' "inner field absent from outer scope" true
    (not (List.mem_assoc "inner" outer));
  check bool' "outer field survived the nested scope" true
    (List.mem_assoc "outer" outer);
  (* exceptions close the scope and re-raise *)
  (try ignore (Log.Ctx.collect (fun () -> raise Exit)) with Exit -> ());
  check bool' "scope closed after raise" false (Log.Ctx.active ())

let test_log_open_file () =
  let path = Filename.temp_file "ekg_log" ".jsonl" in
  (match Log.open_file ~level:Log.Debug path with
  | Error e -> Alcotest.failf "open_file: %s" e
  | Ok log ->
    Log.info log "one" [ "k", Log.Str "v" ];
    Log.info log "two" [];
    Log.close log;
    Log.info log "after-close" [];
    (* silently dropped *)
    let ic = open_in path in
    let rec read acc =
      match input_line ic with
      | line -> read (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = read [] in
    close_in ic;
    Sys.remove path;
    check int' "two lines on disk" 2 (List.length lines);
    List.iter (fun l -> ignore (parse_json l)) lines);
  match Log.open_file "/nonexistent-dir-xyz/log.jsonl" with
  | Ok _ -> Alcotest.fail "opened a file in a nonexistent directory"
  | Error _ -> ()

(* --- runtime sampler --------------------------------------------------------- *)

let find_sample name samples =
  List.find_opt (fun (s : Runtime.sample) -> s.Runtime.s_name = name) samples

let test_runtime_gc_gauges () =
  let m = Metrics.create () in
  let rt = Runtime.create m in
  let samples = Runtime.sample rt in
  List.iter
    (fun name ->
      check bool' name true (find_sample name samples <> None);
      check bool' (name ^ " published") true (Metrics.value m name <> None))
    [
      "ekg_runtime_gc_heap_words";
      "ekg_runtime_gc_top_heap_words";
      "ekg_runtime_gc_minor_collections";
      "ekg_runtime_gc_major_collections";
      "ekg_runtime_gc_compactions";
      "ekg_runtime_gc_promoted_words";
      "ekg_runtime_alloc_rate_words_per_s";
    ];
  (match find_sample "ekg_runtime_gc_heap_words" samples with
  | Some s -> check bool' "heap is non-empty" true (s.Runtime.s_value > 0.)
  | None -> Alcotest.fail "heap gauge missing");
  ignore (Runtime.sample rt);
  check
    Alcotest.(option (float 0.))
    "passes counted" (Some 2.)
    (Metrics.value m Runtime.samples_metric)

let test_runtime_sources () =
  let m = Metrics.create () in
  let rt = Runtime.create m in
  Runtime.register rt "pool" (fun () ->
      [
        {
          Runtime.s_name = "test_pool_busy";
          s_help = "busy";
          s_labels = [ "worker", "0" ];
          s_value = 7.;
        };
      ]);
  Runtime.register rt "broken" (fun () -> failwith "source blew up");
  let samples = Runtime.sample rt in
  (match find_sample "test_pool_busy" samples with
  | Some s ->
    check bool' "labels kept" true (s.Runtime.s_labels = [ "worker", "0" ]);
    check float' "value kept" 7. s.Runtime.s_value
  | None -> Alcotest.fail "registered source not consulted");
  check
    Alcotest.(option (float 0.))
    "labeled gauge published" (Some 7.)
    (Metrics.value m ~labels:[ "worker", "0" ] "test_pool_busy");
  (* replace by name *)
  Runtime.register rt "pool" (fun () ->
      [
        {
          Runtime.s_name = "test_pool_busy";
          s_help = "busy";
          s_labels = [ "worker", "0" ];
          s_value = 9.;
        };
      ]);
  (match find_sample "test_pool_busy" (Runtime.sample rt) with
  | Some s -> check float' "replaced, not duplicated" 9. s.Runtime.s_value
  | None -> Alcotest.fail "replaced source not consulted")

let test_runtime_start_stop () =
  let m = Metrics.create () in
  let rt = Runtime.create ~period_s:0.01 m in
  check bool' "created stopped" false (Runtime.running rt);
  Runtime.start rt;
  Runtime.start rt;
  (* idempotent *)
  check bool' "running" true (Runtime.running rt);
  Unix.sleepf 0.08;
  Runtime.stop rt;
  Runtime.stop rt;
  (* idempotent *)
  check bool' "stopped" false (Runtime.running rt);
  match Metrics.value m Runtime.samples_metric with
  | Some n -> check bool' "background passes ran" true (n >= 1.)
  | None -> Alcotest.fail "no pass recorded"

(* --- instrumented locks ------------------------------------------------------ *)

let test_lock_instrumented () =
  let m = Metrics.create () in
  Lock.declare m "reg";
  check
    Alcotest.(option (float 0.))
    "declared at zero" (Some 0.)
    (Metrics.value m ~labels:[ "lock", "reg" ] Lock.acquisitions_metric);
  let l = Lock.create ~obs:m "reg" in
  check string' "name" "reg" (Lock.name l);
  let v = Lock.with_lock l (fun () -> 41 + 1) in
  check int' "with_lock returns the body result" 42 v;
  check
    Alcotest.(option (float 0.))
    "acquisition counted" (Some 1.)
    (Metrics.value m ~labels:[ "lock", "reg" ] Lock.acquisitions_metric);
  check
    Alcotest.(option (float 0.))
    "uncontended" (Some 0.)
    (Metrics.value m ~labels:[ "lock", "reg" ] Lock.contended_metric);
  let out = Metrics.to_prometheus m in
  check bool' "wait histogram rendered" true
    (contains out (Lock.wait_metric ^ "_count{lock=\"reg\"} 1"));
  check bool' "hold histogram rendered" true
    (contains out (Lock.hold_metric ^ "_count{lock=\"reg\"} 1"));
  (* exception safety: the lock is free again after a raising body *)
  (try Lock.with_lock l (fun () -> raise Exit) with Exit -> ());
  Lock.with_lock l ignore;
  check
    Alcotest.(option (float 0.))
    "released on raise, reacquirable" (Some 3.)
    (Metrics.value m ~labels:[ "lock", "reg" ] Lock.acquisitions_metric)

let test_lock_contention () =
  let m = Metrics.create () in
  let l = Lock.create ~obs:m "hot" in
  Lock.lock l;
  let d = Domain.spawn (fun () -> Lock.with_lock l (fun () -> ())) in
  (* give the domain time to block on the contended mutex *)
  Unix.sleepf 0.05;
  Lock.unlock l;
  Domain.join d;
  (match Metrics.value m ~labels:[ "lock", "hot" ] Lock.contended_metric with
  | Some n -> check bool' "contention observed" true (n >= 1.)
  | None -> Alcotest.fail "contended counter missing");
  let out = Metrics.to_prometheus m in
  (* the blocked acquirer waited ~50ms: some wait bucket below +Inf but
     above 25ms must be skipped by its observation *)
  check bool' "wait sum reflects the block" true
    (contains out (Lock.wait_metric ^ "_sum{lock=\"hot\"}"));
  check bool' "hold histogram has both sections" true
    (contains out (Lock.hold_metric ^ "_count{lock=\"hot\"} 2"))

let test_lock_noop () =
  let l = Lock.create "quiet" in
  (* default registry is a noop: operations must stay plain mutex ops *)
  Lock.with_lock l (fun () -> ());
  let m = Metrics.noop () in
  let l2 = Lock.create ~obs:m "quiet2" in
  Lock.lock l2;
  Lock.unlock l2;
  check string' "noop registry renders nothing" "" (Metrics.to_prometheus m)

(* --- chase profiling -------------------------------------------------------- *)

let parse_exn src =
  match Ekg_datalog.Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse: %s" e

let control_program =
  {|
sigma1: own(X, Y, S), S > 0.5 -> control(X, Y).
sigma3: control(X, Z), own(Z, Y, S), TS = sum(S), TS > 0.5 -> control(X, Y).
@goal(control).
own("A", "B", 0.6).
own("B", "C", 0.7).
|}

let test_chase_stats () =
  let { Ekg_datalog.Parser.program; facts } = parse_exn control_program in
  let sink = Metrics.create () in
  match Ekg_engine.Chase.run_checked ~stats:sink program facts with
  | Error _ -> Alcotest.fail "chase failed"
  | Ok result ->
    (match result.stats with
    | None -> Alcotest.fail "stats not collected"
    | Some s ->
      check bool' "one stat per rule" true (List.length s.per_rule >= 2);
      check bool' "rule ids preserved" true
        (List.exists
           (fun (r : Ekg_engine.Chase.rule_stat) -> r.rule_id = "sigma1")
           s.per_rule);
      check bool' "per-round entries" true (s.per_round <> []);
      check int' "single stratum" 1 (List.length s.rounds_per_stratum);
      check int' "stratum rounds match total" result.rounds
        (List.fold_left ( + ) 0 s.rounds_per_stratum);
      let facts_by_rule =
        List.fold_left
          (fun acc (r : Ekg_engine.Chase.rule_stat) -> acc + r.facts)
          0 s.per_rule
      in
      check bool' "rules account for the derived facts" true
        (facts_by_rule >= result.derived_count);
      check bool' "wall clock recorded" true (s.wall_s >= 0.));
    check
      Alcotest.(option (float 0.))
      "rounds pushed to the sink"
      (Some (float_of_int result.rounds))
      (Metrics.value sink "ekg_chase_rounds_total");
    check
      Alcotest.(option (float 0.))
      "run counted" (Some 1.)
      (Metrics.value sink "ekg_chase_runs_total");
    check bool' "per-rule series labeled" true
      (contains
         (Metrics.to_prometheus sink)
         {|ekg_chase_rule_facts_total{rule="sigma1",stratum="0"}|})

let test_chase_noop_sink () =
  let { Ekg_datalog.Parser.program; facts } = parse_exn control_program in
  match Ekg_engine.Chase.run_checked ~stats:(Metrics.noop ()) program facts with
  | Error _ -> Alcotest.fail "chase failed"
  | Ok result ->
    check bool' "disabled sink disables collection" true (result.stats = None)

let test_divergent_diagnostic () =
  let { Ekg_datalog.Parser.program; facts } =
    parse_exn {|
step: n(X), Y = X + 1, Y < 1000000 -> n(Y).
@goal(n).
n(0).
|}
  in
  match Ekg_engine.Chase.run_checked ~max_rounds:5 program facts with
  | Error (Ekg_engine.Chase.Divergent d as e) ->
    check int' "bound echoed" 5 d.max_rounds;
    let msg = Ekg_engine.Chase.error_to_string e in
    check bool' "message names the bound" true (contains msg "5 rounds");
    check bool' "message breaks rounds down by stratum" true
      (contains msg "rounds per stratum");
    check bool' "per-stratum counts present" true (contains msg "#1=")
  | Error _ -> Alcotest.fail "wrong error constructor"
  | Ok _ -> Alcotest.fail "divergent program terminated"

(* --- pipeline instrumentation ----------------------------------------------- *)

let test_pipeline_spans () =
  let t = Trace.create () in
  match Ekg_apps.Bundled.load ~obs:t "company-control" with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok _ -> (
    match Trace.recent t with
    | [ root ] ->
      check string' "root span" "pipeline-build" root.Trace.name;
      let names =
        List.map (fun (_, s) -> s.Trace.name) (Trace.flatten root)
      in
      List.iter
        (fun stage -> check bool' stage true (List.mem stage names))
        [
          "structural-analysis";
          "depgraph";
          "critical-nodes";
          "path-extraction";
          "verbalization";
          "enhancement";
        ]
    | l -> Alcotest.failf "expected one build trace, got %d" (List.length l))

(* --------------------------------------------------------------------------- *)

let () =
  Alcotest.run "ekg_obs"
    [
      ( "hist",
        [
          Alcotest.test_case "quantile edges" `Quick test_hist_quantile_edges;
          Alcotest.test_case "cumulative buckets" `Quick test_hist_cumulative;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "escaping" `Quick test_prom_escaping;
          Alcotest.test_case "registry rendering" `Quick test_metrics_registry;
          Alcotest.test_case "noop registry" `Quick test_metrics_noop;
          Alcotest.test_case "counter thread-safety" `Quick
            test_counter_thread_safety;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "exception + hook" `Quick
            test_span_exception_and_hook;
          Alcotest.test_case "trace ids unique" `Quick test_trace_ids_unique;
          Alcotest.test_case "jsonl export" `Quick test_jsonl_export;
        ] );
      ( "log",
        [
          Alcotest.test_case "level filtering" `Quick test_log_level_filtering;
          Alcotest.test_case "jsonl shape" `Quick test_log_jsonl_shape;
          Alcotest.test_case "slow ring" `Quick test_log_slow_ring;
          Alcotest.test_case "ambient ctx" `Quick test_log_ctx;
          Alcotest.test_case "file sink" `Quick test_log_open_file;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "gc gauges" `Quick test_runtime_gc_gauges;
          Alcotest.test_case "sources" `Quick test_runtime_sources;
          Alcotest.test_case "start/stop" `Quick test_runtime_start_stop;
        ] );
      ( "lock",
        [
          Alcotest.test_case "instrumented series" `Quick
            test_lock_instrumented;
          Alcotest.test_case "contention" `Quick test_lock_contention;
          Alcotest.test_case "noop off-mode" `Quick test_lock_noop;
        ] );
      ( "chase profiling",
        [
          Alcotest.test_case "stats + series" `Quick test_chase_stats;
          Alcotest.test_case "noop sink" `Quick test_chase_noop_sink;
          Alcotest.test_case "divergent diagnostic" `Quick
            test_divergent_diagnostic;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "build spans" `Quick test_pipeline_spans ] );
    ]
