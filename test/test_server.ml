(* Tests for the explanation service: JSON codec round-trips, the HTTP
   request parser, metrics histogram quantiles, the typed chase errors,
   the session registry's cache accounting, router status mapping, and
   one loopback-socket integration test against a live server. *)

open Ekg_server

let contains haystack needle =
  List.length (Ekg_kernel.Textutil.split_on_string ~sep:needle haystack) > 1

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int
let string' = Alcotest.string

let json_t =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Json.to_string j))
    ( = )

(* --- json ------------------------------------------------------------------ *)

let roundtrip j =
  match Json.parse (Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "reparse: %s" e

let test_json_print () =
  check string' "object"
    {|{"a":1,"b":[true,null,"x"]}|}
    (Json.to_string
       (Json.Obj [ "a", Json.int 1; "b", Json.Arr [ Json.Bool true; Json.Null; Json.str "x" ] ]));
  check string' "integral floats have no point" "42" (Json.to_string (Json.num 42.));
  check string' "fractions survive" "0.125" (Json.to_string (Json.num 0.125));
  check string' "escapes" {|"a\"b\\c\nd\te"|} (Json.to_string (Json.str "a\"b\\c\nd\te"));
  check string' "control chars" {|"\u0001"|} (Json.to_string (Json.str "\001"))

let test_json_roundtrip () =
  let deep =
    Json.Obj
      [
        "text", Json.str "quotes \" backslash \\ newline \n tab \t unicode \xc3\xa9";
        "nums", Json.Arr [ Json.int 0; Json.int (-17); Json.num 3.5; Json.num 1e-3 ];
        "nested", Json.Obj [ "empty_arr", Json.Arr []; "empty_obj", Json.Obj [] ];
        "flag", Json.Bool false;
        "nothing", Json.Null;
      ]
  in
  check json_t "deep round-trip" deep (roundtrip deep)

let test_json_parse_escapes () =
  (match Json.parse {|"caf\u00e9 \ud83d\ude00"|} with
  | Ok (Json.Str s) -> check string' "utf8 from \\u" "caf\xc3\xa9 \xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse: %s" e);
  (match Json.parse "  [1, 2,\t3]\n" with
  | Ok j -> check json_t "whitespace" (Json.Arr [ Json.int 1; Json.int 2; Json.int 3 ]) j
  | Error e -> Alcotest.failf "parse: %s" e)

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed %S" s
    | Error _ -> ()
  in
  List.iter bad
    [ "{"; "[1,]"; "{\"a\" 1}"; "\"unterminated"; "nul"; "1 2"; "{\"a\":}"; "\"\\u12"; "\"\\ud800\"" ]

let test_json_accessors () =
  let j = Json.Obj [ "s", Json.str "x"; "n", Json.int 7; "b", Json.Bool true; "z", Json.Null ] in
  check bool' "mem_str" true (Json.mem_str "s" j = Some "x");
  check bool' "mem_int" true (Json.mem_int "n" j = Some 7);
  check bool' "mem_bool" true (Json.mem_bool "b" j = Some true);
  check bool' "null reads as absent" true (Json.member "z" j = None);
  check bool' "missing" true (Json.member "w" j = None)

(* --- http parser ----------------------------------------------------------- *)

let parse = Http.parse_request_string

let test_http_happy_path () =
  let req =
    "POST /sessions/s1/explain?v=1&q=a%20b HTTP/1.1\r\nHost: localhost\r\n\
     Content-Type: application/json\r\nContent-Length: 15\r\n\r\n{\"query\": \"x\"}X"
  in
  match parse req with
  | Error _ -> Alcotest.fail "happy path rejected"
  | Ok r ->
    check bool' "method" true (r.Http.meth = Http.POST);
    check bool' "path segments" true (r.Http.path = [ "sessions"; "s1"; "explain" ]);
    check bool' "query decoded" true (r.Http.query = [ "v", "1"; "q", "a b" ]);
    check string' "body by content-length" "{\"query\": \"x\"}X" r.Http.body;
    check bool' "header lookup is case-insensitive" true
      (Http.header r "content-TYPE" = Some "application/json")

let test_http_get_without_length () =
  match parse "GET /health HTTP/1.1\r\nHost: x\r\n\r\n" with
  | Ok r ->
    check bool' "GET" true (r.Http.meth = Http.GET);
    check string' "empty body" "" r.Http.body
  | Error _ -> Alcotest.fail "bare GET rejected"

let test_http_missing_content_length () =
  match parse "POST /sessions HTTP/1.1\r\nHost: x\r\n\r\n{}" with
  | Error Http.Length_required -> ()
  | Error _ -> Alcotest.fail "wrong error for missing Content-Length"
  | Ok _ -> Alcotest.fail "POST without Content-Length accepted"

let test_http_oversized_body () =
  let req = "POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n" in
  (match parse ~max_body_bytes:1024 req with
  | Error (Http.Payload_too_large limit) -> check int' "limit reported" 1024 limit
  | Error _ -> Alcotest.fail "wrong error for oversized body"
  | Ok _ -> Alcotest.fail "oversized body accepted");
  check int' "413 maps" 413 (Http.error_status (Http.Payload_too_large 1024))

let test_http_bad_requests () =
  let bad s =
    match parse s with
    | Error (Http.Bad_request _) -> ()
    | Error _ -> Alcotest.failf "wrong error class for %S" s
    | Ok _ -> Alcotest.failf "accepted malformed %S" s
  in
  bad "NONSENSE\r\n\r\n";
  bad "GET /x SMTP/1.0\r\n\r\n";
  bad "GET nopath HTTP/1.1\r\n\r\n";
  bad "POST /x HTTP/1.1\r\nContent-Length: tw0\r\n\r\n";
  bad "GET /x HTTP/1.1\r\nbroken header line\r\n\r\n";
  (* truncated before the blank line *)
  bad "GET /x HTTP/1.1\r\nHost: y\r\n"

let test_http_header_limit () =
  let req =
    "GET / HTTP/1.1\r\nBig: " ^ String.make 4096 'x' ^ "\r\n\r\n"
  in
  match parse ~max_header_bytes:256 req with
  | Error (Http.Headers_too_large _) -> ()
  | _ -> Alcotest.fail "oversized headers accepted"

let test_http_response_serialization () =
  let s = Http.response_to_string (Http.response 404 "{\"error\":\"x\"}") in
  check bool' "status line" true
    (String.length s > 20 && String.sub s 0 22 = "HTTP/1.1 404 Not Found");
  check bool' "content-length" true
    (contains s "Content-Length: 13");
  check bool' "connection close" true (contains s "Connection: close")

(* --- metrics --------------------------------------------------------------- *)

let test_hist_quantiles () =
  let h = Metrics.Hist.create () in
  (* 1..100 ms, uniformly *)
  for i = 1 to 100 do
    Metrics.Hist.observe h (float_of_int i /. 1000.)
  done;
  check int' "count" 100 (Metrics.Hist.count h);
  check (Alcotest.float 1e-6) "p50 bucket" 50. (Metrics.Hist.quantile h 0.50);
  check (Alcotest.float 1e-6) "p95 bucket" 100. (Metrics.Hist.quantile h 0.95);
  check (Alcotest.float 1e-6) "p99 bucket" 100. (Metrics.Hist.quantile h 0.99);
  check (Alcotest.float 1e-6) "max" 100. (Metrics.Hist.max_ms h);
  check (Alcotest.float 1e-3) "sum" 5050. (Metrics.Hist.sum_ms h)

let test_hist_edges () =
  let h = Metrics.Hist.create () in
  check (Alcotest.float 0.) "empty quantile" 0. (Metrics.Hist.quantile h 0.99);
  Metrics.Hist.observe h 60.;  (* over the last bound: overflow bucket *)
  check (Alcotest.float 1e-6) "overflow reports observed max" 60000.
    (Metrics.Hist.quantile h 0.99);
  let h2 = Metrics.Hist.create () in
  Metrics.Hist.observe h2 0.00002;
  (* the bound of the first bucket is 0.05 ms, but a singleton histogram
     clamps the estimate to its observed maximum *)
  check (Alcotest.float 1e-6) "tiny latency clamps to observed max" 0.02
    (Metrics.Hist.quantile h2 0.5);
  check (Alcotest.float 1e-6) "q <= 0 estimates the smallest observation" 0.02
    (Metrics.Hist.quantile h2 0.)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.record m ~endpoint:"GET /health" ~status:200 ~seconds:0.001;
  Metrics.record m ~endpoint:"GET /health" ~status:500 ~seconds:0.002;
  Metrics.cache_hit m;
  Metrics.cache_miss m;
  Metrics.cache_hit m;
  check bool' "cache counts" true (Metrics.cache_counts m = (2, 1));
  let doc = Metrics.to_json m ~uptime_s:1. in
  check bool' "totals" true (Json.mem_int "requests_total" doc = Some 2);
  check bool' "errors" true (Json.mem_int "errors_total" doc = Some 1);
  let hits =
    Option.bind (Json.member "session_cache" doc) (Json.mem_int "hits")
  in
  check bool' "hits serialized" true (hits = Some 2)

(* --- typed chase errors ---------------------------------------------------- *)

let parse_exn src =
  match Ekg_datalog.Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse: %s" e

let test_chase_checked_unstratifiable () =
  let { Ekg_datalog.Parser.program; facts } =
    parse_exn {|
p(X), not q(X) -> q(X).
@goal(q).
p("a").
|}
  in
  match Ekg_engine.Chase.run_checked program facts with
  | Error (Ekg_engine.Chase.Unstratifiable _ as e) ->
    check bool' "client error" true (Ekg_engine.Chase.client_error e);
    check bool' "message preserved" true
      (Ekg_kernel.Textutil.contains_word
         (Ekg_engine.Chase.error_to_string e) "stratifiable")
  | Error _ -> Alcotest.fail "wrong error constructor"
  | Ok _ -> Alcotest.fail "unstratifiable program accepted"

let test_chase_checked_inconsistent () =
  let { Ekg_datalog.Parser.program; facts } =
    parse_exn {|
veto: bad(X) -> false.
mark: p(X) -> bad(X).
@goal(bad).
p("a").
|}
  in
  match Ekg_engine.Chase.run_checked program facts with
  | Error (Ekg_engine.Chase.Inconsistent _ as e) ->
    check bool' "client error" true (Ekg_engine.Chase.client_error e)
  | Error _ -> Alcotest.fail "wrong error constructor"
  | Ok _ -> Alcotest.fail "violated constraint accepted"

let test_chase_checked_divergent_is_server_side () =
  let err =
    Ekg_engine.Chase.Divergent { max_rounds = 7; stratum_rounds = [ 2; 5 ] }
  in
  check bool' "divergence is not a client error" false
    (Ekg_engine.Chase.client_error err);
  check bool' "message names the strata" true
    (contains (Ekg_engine.Chase.error_to_string err) "#2=5")

(* --- registry -------------------------------------------------------------- *)

let inline_program =
  {|
sigma1: own(X, Y, S), S > 0.5 -> control(X, Y).
sigma3: control(X, Z), own(Z, Y, S), TS = sum(S), TS > 0.5 -> control(X, Y).
@goal(control).
own("A", "B", 0.6).
own("B", "C", 0.7).
|}

let test_registry_cache_accounting () =
  let metrics = Metrics.create () in
  let reg = Registry.create metrics in
  let session =
    match Registry.add reg ~name:"inline" (Registry.Inline { program = inline_program; glossary = None }) with
    | Ok s -> s
    | Error e -> Alcotest.failf "add: %s" e
  in
  check string' "first id" "s1" session.Registry.id;
  (match Registry.materialize reg session with
  | Ok r -> check bool' "derived something" true (r.Ekg_engine.Chase.derived_count > 0)
  | Error _ -> Alcotest.fail "materialize failed");
  (match Registry.materialize reg session with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "second materialize failed");
  check bool' "one miss then one hit" true (Metrics.cache_counts metrics = (1, 1));
  check bool' "found by id" true (Registry.find reg "s1" <> None);
  check bool' "unknown id" true (Registry.find reg "s99" = None)

let test_registry_path_containment () =
  let reg = Registry.create (Metrics.create ()) in
  let escape p =
    match
      Registry.add reg (Registry.Files { program = p; glossary = None; facts_dir = None })
    with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "path %S escaped the root" p
  in
  escape "../../../etc/passwd";
  escape "/etc/passwd"

let test_registry_spec_decoding () =
  let decode s =
    match Json.parse s with
    | Ok j -> Registry.spec_of_json j
    | Error e -> Alcotest.failf "json: %s" e
  in
  (match decode {|{"app":"company-control","name":"cc"}|} with
  | Ok (Registry.App "company-control", Some "cc") -> ()
  | _ -> Alcotest.fail "app spec");
  (match decode {|{"program_path":"programs/x.vada","facts_dir":"data/x"}|} with
  | Ok (Registry.Files { program = "programs/x.vada"; facts_dir = Some "data/x"; _ }, None) -> ()
  | _ -> Alcotest.fail "files spec");
  (match decode {|{"program":"p(\"a\"). @goal(p)."}|} with
  | Ok (Registry.Inline _, None) -> ()
  | _ -> Alcotest.fail "inline spec");
  (match decode {|{}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty spec accepted");
  match decode {|{"app":"x","program":"y"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ambiguous spec accepted"

(* --- router (no sockets) --------------------------------------------------- *)

let request ?(body = "") ?(headers = []) ?(query = []) meth path =
  let target = "/" ^ String.concat "/" path in
  {
    Http.meth;
    target;
    path;
    query;
    headers = ("content-type", "application/json") :: headers;
    body;
  }

(* the machine-readable code of an envelope response *)
let envelope_code (r : Http.response) =
  match Json.parse r.Http.resp_body with
  | Ok j -> Option.bind (Json.member "error" j) (Json.mem_str "code")
  | Error _ -> None

let envelope_retryable (r : Http.response) =
  match Json.parse r.Http.resp_body with
  | Ok j -> Option.bind (Json.member "error" j) (fun e -> Json.mem_bool "retryable" e)
  | Error _ -> None

let resp_header (r : Http.response) name = List.assoc_opt name r.Http.resp_headers

let test_error_envelope_codes () =
  List.iter
    (fun code ->
      let resp = Errors.response code "boom" in
      check int' ("status of " ^ Errors.id code) (Errors.status code)
        resp.Http.status;
      match Json.parse resp.Http.resp_body with
      | Error e -> Alcotest.failf "envelope of %s is not json: %s" (Errors.id code) e
      | Ok j -> (
        match Json.member "error" j with
        | None -> Alcotest.failf "%s: no error object" (Errors.id code)
        | Some err ->
          check bool' (Errors.id code ^ " code echoed") true
            (Json.mem_str "code" err = Some (Errors.id code));
          check bool' (Errors.id code ^ " message echoed") true
            (Json.mem_str "message" err = Some "boom");
          check bool' (Errors.id code ^ " retryable present") true
            (Json.mem_bool "retryable" err = Some (Errors.retryable code))))
    Errors.all;
  let ids = List.map Errors.id Errors.all in
  check int' "wire ids are unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  (* the documented failure-semantics table, spot-checked *)
  check int' "deadline_exceeded is 504" 504 (Errors.status Errors.Deadline_exceeded);
  check int' "overloaded is 503" 503 (Errors.status Errors.Overloaded);
  check int' "inconsistent_program is 409" 409 (Errors.status Errors.Inconsistent_program);
  check bool' "overloaded is retryable" true (Errors.retryable Errors.Overloaded);
  check bool' "deadline is retryable" true (Errors.retryable Errors.Deadline_exceeded);
  check bool' "divergent is not retryable" false (Errors.retryable Errors.Divergent);
  check bool' "invalid_program is not retryable" false
    (Errors.retryable Errors.Invalid_program)

let test_router_statuses () =
  let st = Router.make_state () in
  let status r = r.Http.status in
  check int' "health" 200 (status (Router.handle st (request Http.GET [ "v1"; "health" ])));
  let missing = Router.handle st (request Http.GET [ "v1"; "nope" ]) in
  check int' "unknown route" 404 missing.Http.status;
  check bool' "not_found code" true (envelope_code missing = Some "not_found");
  let bad_method = Router.handle st (request Http.DELETE [ "v1"; "health" ]) in
  check int' "bad method" 405 bad_method.Http.status;
  check bool' "method_not_allowed code" true
    (envelope_code bad_method = Some "method_not_allowed");
  let no_session =
    Router.handle st
      (request ~body:{|{"query":"p("a")"}|} Http.POST
         [ "v1"; "sessions"; "s9"; "explain" ])
  in
  check int' "unknown session" 404 no_session.Http.status;
  check bool' "session_not_found code" true
    (envelope_code no_session = Some "session_not_found");
  let bad_body = Router.handle st (request ~body:"{oops" Http.POST [ "v1"; "sessions" ]) in
  check int' "bad session body" 400 bad_body.Http.status;
  check bool' "parse_error code" true (envelope_code bad_body = Some "parse_error");
  let created =
    Router.handle st
      (request ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  check int' "templates" 200
    (status (Router.handle st (request Http.GET [ "v1"; "sessions"; "s1"; "templates" ])));
  check int' "malformed atom is 400"
    400
    (status
       (Router.handle st
          (request ~body:{|{"query":"control(\"A\" oops"}|} Http.POST
             [ "v1"; "sessions"; "s1"; "explain" ])));
  let bad_deadline =
    Router.handle st
      (request
         ~headers:[ "x-ekg-deadline-ms", "soon" ]
         ~body:{|{"query":"control(\"A\", \"C\")"}|} Http.POST
         [ "v1"; "sessions"; "s1"; "explain" ])
  in
  check int' "bad deadline header is 400" 400 bad_deadline.Http.status;
  check bool' "invalid_request code" true
    (envelope_code bad_deadline = Some "invalid_request");
  check int' "valid explain" 200
    (status
       (Router.handle st
          (request ~body:{|{"query":"control(\"A\", \"C\")"}|} Http.POST
             [ "v1"; "sessions"; "s1"; "explain" ])))

let test_router_legacy_redirect () =
  let st = Router.make_state () in
  let r = Router.handle st (request Http.GET [ "health" ]) in
  check int' "301" 301 r.Http.status;
  check bool' "Location points at /v1" true
    (resp_header r "Location" = Some "/v1/health");
  check bool' "Deprecation header" true (resp_header r "Deprecation" = Some "true");
  check bool' "moved_permanently envelope" true
    (envelope_code r = Some "moved_permanently");
  let r2 =
    Router.handle st
      (request ~body:"{}" Http.POST [ "sessions"; "s1"; "explain" ])
  in
  check int' "nested legacy path redirects" 301 r2.Http.status;
  check bool' "nested Location" true
    (resp_header r2 "Location" = Some "/v1/sessions/s1/explain");
  let r3 = Router.handle st (request Http.GET [ "metrics" ]) in
  check int' "legacy metrics redirects" 301 r3.Http.status

let test_router_observability () =
  let st = Router.make_state () in
  let header (r : Http.response) name = List.assoc_opt name r.Http.resp_headers in
  let r1 = Router.handle st (request Http.GET [ "v1"; "health" ]) in
  let r2 = Router.handle st (request Http.GET [ "v1"; "health" ]) in
  (match header r1 "X-Ekg-Trace-Id", header r2 "X-Ekg-Trace-Id" with
  | Some a, Some b ->
    check bool' "trace id assigned" true (String.length a > 0);
    check bool' "trace ids unique per request" true (a <> b)
  | _ -> Alcotest.fail "missing X-Ekg-Trace-Id header");
  let created =
    Router.handle st
      (request ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  let no_trace =
    Router.handle st (request Http.GET [ "v1"; "sessions"; "s1"; "trace" ])
  in
  check int' "no trace before the first explain" 404 no_trace.Http.status;
  check bool' "no_trace code" true (envelope_code no_trace = Some "no_trace");
  check int' "bad method on trace is 405" 405
    (Router.handle st (request Http.POST [ "v1"; "sessions"; "s1"; "trace" ])).Http.status;
  let explained =
    Router.handle st
      (request ~body:{|{"query":"control(\"A\", \"C\")"}|} Http.POST
         [ "v1"; "sessions"; "s1"; "explain" ])
  in
  check int' "explain ok" 200 explained.Http.status;
  check bool' "explain body echoes the trace id" true
    (contains explained.Http.resp_body {|"trace_id"|});
  check bool' "explain is not degraded under a roomy deadline" true
    (contains explained.Http.resp_body {|"degraded":false|});
  let trace = Router.handle st (request Http.GET [ "v1"; "sessions"; "s1"; "trace" ]) in
  check int' "trace recorded after explain" 200 trace.Http.status;
  check bool' "root span is the request" true
    (contains trace.Http.resp_body {|"name":"explain-request"|});
  check bool' "chase child span" true
    (contains trace.Http.resp_body {|"name":"chase"|});
  check bool' "explain stage spans" true
    (contains trace.Http.resp_body {|"name":"proof-extraction"|});
  (* content negotiation on /v1/metrics *)
  let json_doc = Router.handle st (request Http.GET [ "v1"; "metrics" ]) in
  check bool' "default stays json" true
    (contains json_doc.Http.resp_body {|"requests_total"|});
  let prom =
    Router.handle st
      (request ~headers:[ "accept", "text/plain" ] Http.GET [ "v1"; "metrics" ])
  in
  check string' "prometheus content type" "text/plain; version=0.0.4"
    prom.Http.content_type;
  check bool' "requests_total exposition" true
    (contains prom.Http.resp_body "# TYPE ekg_requests_total counter");
  check bool' "chase series present" true
    (contains prom.Http.resp_body "ekg_chase_rounds_total");
  check bool' "robustness series pre-declared" true
    (contains prom.Http.resp_body "ekg_server_shed_total"
    && contains prom.Http.resp_body "ekg_request_deadline_exceeded_total"
    && contains prom.Http.resp_body "ekg_server_queue_depth");
  check bool' "stage series fed by the tracer" true
    (contains prom.Http.resp_body {|ekg_pipeline_stage_seconds_total{stage="chase"}|});
  check bool' "endpoint histogram present" true
    (contains prom.Http.resp_body {|ekg_request_duration_ms_bucket{endpoint="GET /v1/health",le="+Inf"}|});
  let prom2 =
    Router.handle st
      (request ~query:[ "format", "prometheus" ] Http.GET [ "v1"; "metrics" ])
  in
  check bool' "?format=prometheus negotiates too" true
    (contains prom2.Http.resp_body "# HELP ekg_uptime_seconds")

let test_router_deadline_504 () =
  (* a chase stretched far past the deadline by fault injection: the
     request must come back 504 within roughly the deadline, not after
     the full chase *)
  let st = Router.make_state ~fault:(Fault.Slow_chase 5.0) () in
  let created =
    Router.handle st
      (request ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  let t0 = Unix.gettimeofday () in
  let r =
    Router.handle st
      (request
         ~headers:[ "x-ekg-deadline-ms", "50" ]
         ~body:{|{"query":"control(\"A\", \"C\")"}|} Http.POST
         [ "v1"; "sessions"; "s1"; "explain" ])
  in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  check int' "504" 504 r.Http.status;
  check bool' "deadline_exceeded code" true
    (envelope_code r = Some "deadline_exceeded");
  check bool' "retryable" true (envelope_retryable r = Some true);
  check bool' "partial chase stats in detail" true
    (contains r.Http.resp_body {|"detail"|}
    && contains r.Http.resp_body {|"rounds"|}
    && contains r.Http.resp_body {|"elapsed_ms"|});
  (* the 5s fault never completes; ~50ms deadline + 5ms poll slices +
     scheduling slack is the real bound *)
  check bool' "answered near the deadline, not the chase" true
    (elapsed_ms < 1000.);
  let prom =
    Router.handle st
      (request ~query:[ "format", "prometheus" ] Http.GET [ "v1"; "metrics" ])
  in
  check bool' "deadline counter advanced" true
    (contains prom.Http.resp_body "ekg_request_deadline_exceeded_total 1");
  (* a failed (budget-tripped) run is not cached: a roomy retry succeeds *)
  let retry =
    Router.handle st
      (request
         ~headers:[ "x-ekg-deadline-ms", "30000" ]
         ~body:{|{"query":"control(\"A\", \"C\")"}|} Http.POST
         [ "v1"; "sessions"; "s1"; "explain" ])
  in
  check int' "roomy retry succeeds after the fault window" 200 retry.Http.status

let test_router_degraded_explain () =
  (* delay fault + cached chase + a deadline shorter than the delay:
     proof extraction still works, verbalization is skipped *)
  let st = Router.make_state ~fault:(Fault.Delay 0.15) () in
  let created =
    Router.handle st
      (request ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  let warm =
    Router.handle st
      (request ~body:{|{"query":"control(\"A\", \"C\")"}|} Http.POST
         [ "v1"; "sessions"; "s1"; "explain" ])
  in
  check int' "warm explain ok" 200 warm.Http.status;
  check bool' "warm explain fully verbalized" true
    (contains warm.Http.resp_body {|"degraded":false|});
  (* query a different atom: the warm answer is now cached, and a cached
     explanation would be served fully verbalized regardless of deadline *)
  let degraded =
    Router.handle st
      (request
         ~headers:[ "x-ekg-deadline-ms", "50" ]
         ~body:{|{"query":"control(\"A\", \"B\")"}|} Http.POST
         [ "v1"; "sessions"; "s1"; "explain" ])
  in
  check int' "degraded explain still answers 200" 200 degraded.Http.status;
  check bool' "flagged degraded" true
    (contains degraded.Http.resp_body {|"degraded":true|})

let test_router_batch_explain () =
  let st = Router.make_state () in
  let created =
    Router.handle st
      (request ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  let body =
    {|{"queries":["control(\"A\", \"C\")","broken(","zzz(\"q\")"]}|}
  in
  let r =
    Router.handle st
      (request ~body Http.POST [ "v1"; "sessions"; "s1"; "explain:batch" ])
  in
  check int' "batch answers 200 with per-item statuses" 200 r.Http.status;
  (match Json.parse r.Http.resp_body with
  | Error e -> Alcotest.failf "batch body: %s" e
  | Ok j ->
    check bool' "item count" true (Json.mem_int "count" j = Some 3);
    check bool' "ok count" true (Json.mem_int "ok" j = Some 1);
    check bool' "failed count" true (Json.mem_int "failed" j = Some 2);
    (match Option.bind (Json.member "items" j) Json.get_arr with
    | Some [ first; second; third ] ->
      check bool' "first item ok" true (Json.mem_str "status" first = Some "ok");
      check bool' "second item invalid_atom" true
        (Option.bind (Json.member "error" second) (Json.mem_str "code")
        = Some "invalid_atom");
      check bool' "third item no_explanation" true
        (Option.bind (Json.member "error" third) (Json.mem_str "code")
        = Some "no_explanation")
    | _ -> Alcotest.fail "expected three items"));
  (* a bare array body works too, and the whole batch shares one chase:
     the registry saw exactly one miss across both batches *)
  let r2 =
    Router.handle st
      (request ~body:{|["control(\"A\", \"C\")"]|} Http.POST
         [ "v1"; "sessions"; "s1"; "explain:batch" ])
  in
  check int' "bare array accepted" 200 r2.Http.status;
  let misses = snd (Metrics.cache_counts (Router.metrics st)) in
  check int' "one chase across all batch items" 1 misses;
  let empty =
    Router.handle st
      (request ~body:{|{"queries":[]}|} Http.POST
         [ "v1"; "sessions"; "s1"; "explain:batch" ])
  in
  check int' "empty batch rejected" 400 empty.Http.status

(* --- live fact updates ------------------------------------------------------ *)

(* incrementable (no aggregation/existentials): updates maintain the
   materialization in place instead of re-chasing *)
let closure_program =
  {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
e("a", "b"). e("b", "c").
|}

let create_closure_session st =
  let created =
    Router.handle st
      (request
         ~body:(Json.to_string (Json.Obj [ "program", Json.str closure_program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "created" 201 created.Http.status

let explain_path st id query =
  Router.handle st
    (request
       ~body:(Json.to_string (Json.Obj [ "query", Json.str query ]))
       Http.POST [ "v1"; "sessions"; id; "explain" ])

let test_router_facts_live_updates () =
  let st = Router.make_state () in
  create_closure_session st;
  (* first explain materializes and caches; the identical repeat is
     answered from the explanation cache *)
  let first = explain_path st "s1" {|path("a", "c")|} in
  check int' "cold explain ok" 200 first.Http.status;
  check bool' "cold explain not cached" true
    (contains first.Http.resp_body {|"cached":false|});
  let again = explain_path st "s1" {|path("a", "c")|} in
  check bool' "repeat served from cache" true
    (contains again.Http.resp_body {|"cached":true|});
  (* live addition: the closure extends without a fresh chase *)
  let added =
    Router.handle st
      (request ~body:{|{"facts":["e(\"c\", \"d\")"]}|} Http.POST
         [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "addition accepted" 200 added.Http.status;
  check bool' "addition was incremental" true
    (contains added.Http.resp_body {|"incremental":true|});
  let extended = explain_path st "s1" {|path("a", "d")|} in
  check int' "new consequence explainable" 200 extended.Http.status;
  (* the update touched path, so the cached entry was invalidated *)
  let refreshed = explain_path st "s1" {|path("a", "c")|} in
  check bool' "stale entry evicted by the update" true
    (contains refreshed.Http.resp_body {|"cached":false|});
  check int' "one chase total: updates maintained it in place" 1
    (snd (Metrics.cache_counts (Router.metrics st)));
  (* live retraction: the support chain collapses *)
  let removed =
    Router.handle st
      (request ~body:{|{"facts":["e(\"b\", \"c\")"]}|} Http.DELETE
         [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "retraction accepted" 200 removed.Http.status;
  check bool' "retraction was incremental" true
    (contains removed.Http.resp_body {|"incremental":true|});
  let gone = explain_path st "s1" {|path("a", "c")|} in
  check int' "withdrawn consequence is gone" 404 gone.Http.status;
  check bool' "no_explanation code" true
    (envelope_code gone = Some "no_explanation");
  (* the live-update series advanced *)
  let prom =
    Router.handle st
      (request ~query:[ "format", "prometheus" ] Http.GET [ "v1"; "metrics" ])
  in
  check bool' "incremental rounds series advanced" true
    (contains prom.Http.resp_body "ekg_chase_incremental_rounds_total"
    && not
         (contains prom.Http.resp_body "ekg_chase_incremental_rounds_total 0\n"));
  check bool' "retracted facts series advanced" true
    (contains prom.Http.resp_body "ekg_chase_retracted_facts_total"
    && not (contains prom.Http.resp_body "ekg_chase_retracted_facts_total 0\n"))

let test_router_fingerprint_endpoint () =
  let st = Router.make_state () in
  create_closure_session st;
  let fingerprint () =
    let r =
      Router.handle st (request Http.GET [ "v1"; "sessions"; "s1"; "fingerprint" ])
    in
    check int' "fingerprint ok" 200 r.Http.status;
    match Json.parse r.Http.resp_body with
    | Error e -> Alcotest.failf "fingerprint body: %s" e
    | Ok j ->
      check bool' "algo advertised" true (Json.mem_str "algo" j = Some "md5");
      let fp = Option.get (Json.mem_str "fingerprint" j) in
      check int' "md5 hex digest" 32 (String.length fp);
      check bool' "fact count present" true (Json.mem_int "facts" j <> None);
      fp
  in
  let original = fingerprint () in
  check bool' "stable across repeat requests" true (original = fingerprint ());
  (* an incremental update must move the canonical identity, and the
     inverse update must restore it exactly — the replay gate's premise *)
  let update meth =
    let r =
      Router.handle st
        (request ~body:{|{"facts":["e(\"c\", \"d\")"]}|} meth
           [ "v1"; "sessions"; "s1"; "facts" ])
    in
    check int' "update ok" 200 r.Http.status
  in
  update Http.POST;
  let extended = fingerprint () in
  check bool' "update moves the fingerprint" false (original = extended);
  update Http.DELETE;
  check bool' "inverse update restores the fingerprint" true
    (original = fingerprint ());
  (* wrong method on the known path: 405, not 404 *)
  let bad =
    Router.handle st (request Http.POST [ "v1"; "sessions"; "s1"; "fingerprint" ])
  in
  check int' "POST not allowed" 405 bad.Http.status

let test_router_facts_validation () =
  let st = Router.make_state () in
  create_closure_session st;
  let post body =
    Router.handle st (request ~body Http.POST [ "v1"; "sessions"; "s1"; "facts" ])
  in
  let del body =
    Router.handle st
      (request ~body Http.DELETE [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "missing facts field" 400 (post {|{}|}).Http.status;
  check int' "empty facts array" 400 (post {|{"facts":[]}|}).Http.status;
  check int' "non-string fact" 400 (post {|{"facts":[7]}|}).Http.status;
  check int' "unparsable atom" 400 (post {|{"facts":["own(\"A\" oops"]}|}).Http.status;
  check int' "malformed json" 400 (post "{nope").Http.status;
  (* materialize, then hit the engine-level validations *)
  check int' "warm explain" 200 (explain_path st "s1" {|path("a", "b")|}).Http.status;
  let unknown = del {|{"facts":["e(\"z\", \"q\")"]}|} in
  check int' "unknown fact is 404" 404 unknown.Http.status;
  check bool' "unknown_fact code" true (envelope_code unknown = Some "unknown_fact");
  check bool' "unknown_fact not retryable" true
    (envelope_retryable unknown = Some false);
  let derived = del {|{"facts":["path(\"a\", \"b\")"]}|} in
  check int' "derived fact rejected" 400 derived.Http.status;
  check bool' "invalid_program code" true
    (envelope_code derived = Some "invalid_program");
  (* rejected updates must not perturb the session *)
  let survivor = explain_path st "s1" {|path("a", "c")|} in
  check int' "session intact after rejections" 200 survivor.Http.status;
  check int' "GET on facts is 405" 405
    (Router.handle st (request Http.GET [ "v1"; "sessions"; "s1"; "facts" ])).Http.status

let test_router_facts_selective_invalidation () =
  (* two independent predicate families: updating one must not evict
     cached explanations of the other *)
  let st = Router.make_state () in
  let program =
    {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
m(X) -> n(X).
@goal(path).
e("a", "b"). m("q").
|}
  in
  let created =
    Router.handle st
      (request ~body:(Json.to_string (Json.Obj [ "program", Json.str program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  check int' "warm n" 200 (explain_path st "s1" {|n("q")|}).Http.status;
  check int' "warm path" 200 (explain_path st "s1" {|path("a", "b")|}).Http.status;
  let added =
    Router.handle st
      (request ~body:{|{"facts":["e(\"b\", \"c\")"]}|} Http.POST
         [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "edge added" 200 added.Http.status;
  check bool' "unrelated family survives the update" true
    (contains (explain_path st "s1" {|n("q")|}).Http.resp_body {|"cached":true|});
  check bool' "touched family was evicted" true
    (contains
       (explain_path st "s1" {|path("a", "b")|}).Http.resp_body
       {|"cached":false|})

let test_router_facts_aggregate_falls_back () =
  (* inline_program aggregates (sum), so updates re-chase transparently:
     same API, [incremental:false], correct answers *)
  let st = Router.make_state () in
  let created =
    Router.handle st
      (request
         ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  check int' "warm explain" 200
    (explain_path st "s1" {|control("A", "C")|}).Http.status;
  let removed =
    Router.handle st
      (request ~body:{|{"facts":["own(\"B\", \"C\", 0.7)"]}|} Http.DELETE
         [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "retraction accepted" 200 removed.Http.status;
  check bool' "fallback recompute reported" true
    (contains removed.Http.resp_body {|"incremental":false|});
  let gone = explain_path st "s1" {|control("A", "C")|} in
  check int' "control chain broken" 404 gone.Http.status;
  let readded =
    Router.handle st
      (request ~body:{|{"facts":["own(\"B\", \"C\", 0.7)"]}|} Http.POST
         [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "re-addition accepted" 200 readded.Http.status;
  check int' "control chain restored" 200
    (explain_path st "s1" {|control("A", "C")|}).Http.status

let test_registry_update_before_materialize () =
  (* updates against a dormant session mutate the EDB mirror only; the
     first materialization sees the updated base *)
  let reg = Registry.create (Metrics.create ()) in
  let session =
    match
      Registry.add reg
        (Registry.Inline { program = closure_program; glossary = None })
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "add: %s" e
  in
  let atom s =
    match Ekg_datalog.Parser.parse_atom s with
    | Ok a -> a
    | Error e -> Alcotest.failf "atom: %s" e
  in
  (match Registry.update_facts reg session `Add [ atom {|e("c", "d")|} ] with
  | Ok upd ->
    check bool' "dormant update is not incremental" false
      upd.Ekg_engine.Chase.upd_incremental;
    check int' "no chase rounds run" 0 upd.Ekg_engine.Chase.upd_rounds
  | Error e -> Alcotest.failf "add: %s" (Ekg_engine.Chase.error_to_string e));
  (match Registry.update_facts reg session `Retract [ atom {|e("a", "b")|} ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "retract: %s" (Ekg_engine.Chase.error_to_string e));
  (match Registry.update_facts reg session `Retract [ atom {|e("x", "y")|} ] with
  | Error (Ekg_engine.Chase.Unknown_fact _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Ekg_engine.Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "unknown retraction accepted on a dormant session");
  match Registry.materialize reg session with
  | Error _ -> Alcotest.fail "materialize failed"
  | Ok r ->
    let paths =
      Ekg_engine.Database.active r.Ekg_engine.Chase.db "path"
      |> List.map Ekg_engine.Fact.to_string
      |> List.sort String.compare
    in
    check bool' "materialization reflects the updated base" true
      (paths = [ {|path("b", "c")|}; {|path("b", "d")|}; {|path("c", "d")|} ])

(* closure plus a negative constraint the update stream can violate:
   a cycle edge derives path(X, X) -> false *)
let acyclic_program = {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
path(X, X) -> false.
@goal(path).
e("a", "b"). e("b", "c").
|}

let test_router_facts_inconsistent_preserves_state () =
  let st = Router.make_state () in
  let created =
    Router.handle st
      (request
         ~body:(Json.to_string (Json.Obj [ "program", Json.str acyclic_program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  check int' "warm explain" 200 (explain_path st "s1" {|path("a", "c")|}).Http.status;
  check bool' "entry cached" true
    (contains (explain_path st "s1" {|path("a", "c")|}).Http.resp_body
       {|"cached":true|});
  (* the violating addition is the client's fault... *)
  let violating =
    Router.handle st
      (request ~body:{|{"facts":["e(\"c\", \"a\")"]}|} Http.POST
         [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "constraint violation is 409" 409 violating.Http.status;
  check bool' "inconsistent_program code" true
    (envelope_code violating = Some "inconsistent_program");
  (* ...and the session still serves its pre-update state: the engine
     only detects the violation after mutating, but it mutated a
     private copy — cache, instance and base are all intact *)
  check bool' "cache intact after the rejection" true
    (contains (explain_path st "s1" {|path("a", "c")|}).Http.resp_body
       {|"cached":true|});
  check int' "no corrupted consequence served" 404
    (explain_path st "s1" {|path("a", "a")|}).Http.status;
  check int' "rejected atom did not enter the base" 404
    (explain_path st "s1" {|path("c", "a")|}).Http.status;
  (* the session remains live-updatable after the rejection *)
  let ok_add =
    Router.handle st
      (request ~body:{|{"facts":["e(\"c\", \"d\")"]}|} Http.POST
         [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "later valid addition accepted" 200 ok_add.Http.status;
  check bool' "still maintained incrementally" true
    (contains ok_add.Http.resp_body {|"incremental":true|});
  check int' "new consequence explainable" 200
    (explain_path st "s1" {|path("a", "d")|}).Http.status

let registry_inline_session reg program =
  match Registry.add reg (Registry.Inline { program; glossary = None }) with
  | Ok s -> s
  | Error e -> Alcotest.failf "add: %s" e

let parse_atom_exn s =
  match Ekg_datalog.Parser.parse_atom s with
  | Ok a -> a
  | Error e -> Alcotest.failf "atom: %s" e

let test_registry_failed_update_keeps_snapshot () =
  (* a budget trip mid-propagation mutates only the private copy: the
     published materialization must survive, byte-identical *)
  let reg = Registry.create (Metrics.create ()) in
  let session = registry_inline_session reg closure_program in
  let before =
    match Registry.materialize reg session with
    | Ok r -> Ekg_engine.Database.fingerprint r.Ekg_engine.Chase.db
    | Error e ->
      Alcotest.failf "materialize: %s" (Ekg_engine.Chase.error_to_string e)
  in
  let budget = Ekg_engine.Chase.budget ~cancel:(fun () -> true) () in
  (match
     Registry.update_facts ~budget reg session `Add
       [ parse_atom_exn {|e("c", "d")|} ]
   with
  | Error (Ekg_engine.Chase.Cancelled _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Ekg_engine.Chase.error_to_string e)
  | Ok _ -> Alcotest.fail "cancelled update succeeded");
  match session.Registry.chase with
  | None -> Alcotest.fail "failed update dropped the materialization"
  | Some r ->
    check string' "served snapshot identical after the failed update" before
      (Ekg_engine.Database.fingerprint r.Ekg_engine.Chase.db)

let test_registry_duplicate_add_deduped () =
  (* a request repeating an atom adds it to the dormant mirror once *)
  let reg = Registry.create (Metrics.create ()) in
  let session = registry_inline_session reg closure_program in
  let dup = parse_atom_exn {|e("c", "d")|} in
  (match Registry.update_facts reg session `Add [ dup; dup ] with
  | Ok upd -> check int' "repeated atom counted once" 1 upd.Ekg_engine.Chase.upd_added
  | Error e -> Alcotest.failf "add: %s" (Ekg_engine.Chase.error_to_string e));
  check int' "mirror holds it once" 3 (List.length session.Registry.edb);
  match Registry.update_facts reg session `Add [ dup ] with
  | Ok upd -> check int' "re-adding is a no-op" 0 upd.Ekg_engine.Chase.upd_added
  | Error e -> Alcotest.failf "re-add: %s" (Ekg_engine.Chase.error_to_string e)

let test_registry_stale_generation_not_cached () =
  (* an explanation computed before an update committed must not be
     stored after the update's invalidation ran *)
  let reg = Registry.create (Metrics.create ()) in
  let session = registry_inline_session reg closure_program in
  let stale_gen = Registry.generation session in
  (match
     Registry.update_facts reg session `Add [ parse_atom_exn {|e("c", "d")|} ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "add: %s" (Ekg_engine.Chase.error_to_string e));
  let strategy = "primary" and query = {|path("a", "c")|} in
  Registry.cache_explanations session ~generation:stale_gen ~strategy ~query
    ~preds:[ "path" ] [];
  check bool' "stale store dropped" true
    (Registry.cached_explanations session ~strategy ~query = None);
  Registry.cache_explanations session
    ~generation:(Registry.generation session)
    ~strategy ~query ~preds:[ "path" ] [];
  check bool' "current-generation store lands" true
    (Registry.cached_explanations session ~strategy ~query = Some [])

(* --- persistence tier ------------------------------------------------------- *)

let with_store_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ekg_server_store_%d_%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let open_store_exn dir =
  match Ekg_store.Store.open_dir dir with
  | Ok s -> s
  | Error e -> Alcotest.failf "open_dir: %s" e

let materialize_exn reg session =
  match Registry.materialize reg session with
  | Ok r -> r
  | Error e -> Alcotest.failf "materialize: %s" (Ekg_engine.Chase.error_to_string e)

let chase_rounds obs =
  Option.value ~default:0. (Ekg_obs.Metrics.value obs "ekg_chase_rounds_total")

let test_persistence_warm_restore_after_restart () =
  with_store_dir @@ fun dir ->
  (* first daemon lifetime: create, materialize, snapshot synchronously *)
  let fp1 =
    let st = Router.make_state ~store:(open_store_exn dir)
        ~snapshot_mode:Ekg_store.Snapshotter.Sync ()
    in
    let reg = Router.registry st in
    let session = registry_inline_session reg closure_program in
    let r = materialize_exn reg session in
    Registry.stop_persistence reg;
    Ekg_engine.Database.fingerprint r.Ekg_engine.Chase.db
  in
  (* second lifetime over the same directory: recover dormant, then a
     materialization must warm-restore — same fingerprint, zero chase
     rounds on the fresh observability registry *)
  let st2 = Router.make_state ~store:(open_store_exn dir)
      ~snapshot_mode:Ekg_store.Snapshotter.Sync ()
  in
  let reg2 = Router.registry st2 in
  let recovered, failed = Registry.recover reg2 in
  check int' "no recovery failures" 0 (List.length failed);
  check int' "one session recovered" 1 (List.length recovered);
  let session = List.hd recovered in
  check string' "same id" "s1" session.Registry.id;
  check bool' "recovered dormant" true
    (Ekg_obs.Metrics.value (Router.obs st2)
       Registry.recovered_sessions_metric = Some 1.);
  let r = materialize_exn reg2 session in
  check string' "restored fingerprint identical" fp1
    (Ekg_engine.Database.fingerprint r.Ekg_engine.Chase.db);
  check bool' "no chase ran" true (chase_rounds (Router.obs st2) = 0.);
  (* recovery bumped next_id past the recovered sessions *)
  let s_new = registry_inline_session reg2 closure_program in
  check string' "fresh ids allocate above recovered ones" "s2" s_new.Registry.id;
  Registry.stop_persistence reg2

let test_persistence_corrupt_snapshot_falls_back () =
  with_store_dir @@ fun dir ->
  let store = open_store_exn dir in
  let st = Router.make_state ~store ~snapshot_mode:Ekg_store.Snapshotter.Sync () in
  let reg = Router.registry st in
  let session = registry_inline_session reg closure_program in
  let fp =
    Ekg_engine.Database.fingerprint
      (materialize_exn reg session).Ekg_engine.Chase.db
  in
  Registry.stop_persistence reg;
  (* flip one byte inside the snapshot: the next lifetime must detect
     it on the warm-restore path and silently re-chase *)
  let path = Ekg_store.Store.path store "s1" in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b);
  let st2 = Router.make_state ~store:(open_store_exn dir)
      ~snapshot_mode:Ekg_store.Snapshotter.Sync ()
  in
  let reg2 = Router.registry st2 in
  (match Registry.recover reg2 with
  | [ session2 ], [] ->
    (* meta decoded (the flip landed in the materialization section) —
       restore fails, cold chase reproduces the instance *)
    let r = materialize_exn reg2 session2 in
    check string' "re-chased to the same instance" fp
      (Ekg_engine.Database.fingerprint r.Ekg_engine.Chase.db);
    check bool' "a chase really ran" true (chase_rounds (Router.obs st2) > 0.)
  | [], [ (id, _reason) ] ->
    (* the flip landed in the meta section: recovery reports it and
       carries on *)
    check string' "failure names the session" "s1" id
  | _ -> Alcotest.fail "unexpected recovery outcome");
  Registry.stop_persistence reg2

let test_persistence_lru_eviction () =
  with_store_dir @@ fun dir ->
  let obs = Ekg_obs.Metrics.create () in
  let reg =
    Registry.create ~obs ~store:(open_store_exn dir)
      ~snapshot_mode:Ekg_store.Snapshotter.Sync ~max_hot_sessions:1
      (Metrics.create ())
  in
  let s1 = registry_inline_session reg closure_program in
  let s2 = registry_inline_session reg closure_program in
  let fp1 =
    Ekg_engine.Database.fingerprint (materialize_exn reg s1).Ekg_engine.Chase.db
  in
  check int' "one hot session" 1 (Registry.hot_count reg);
  ignore (materialize_exn reg s2);
  check int' "still one hot session" 1 (Registry.hot_count reg);
  check bool' "s1 was demoted" true
    (Ekg_obs.Metrics.value obs Registry.evictions_metric = Some 1.);
  (* the demoted session still serves — warm-restored from its
     eviction snapshot, fingerprint-identical *)
  let rounds_before = chase_rounds obs in
  let r1' = materialize_exn reg s1 in
  check string' "demoted session restores identically" fp1
    (Ekg_engine.Database.fingerprint r1'.Ekg_engine.Chase.db);
  check bool' "restore, not re-chase" true (chase_rounds obs = rounds_before);
  check bool' "s2 demoted in turn" true
    (Ekg_obs.Metrics.value obs Registry.evictions_metric = Some 2.);
  Registry.stop_persistence reg

let test_router_delete_session () =
  with_store_dir @@ fun dir ->
  let store = open_store_exn dir in
  let st = Router.make_state ~store ~snapshot_mode:Ekg_store.Snapshotter.Sync () in
  create_closure_session st;
  check int' "explain before delete" 200
    (explain_path st "s1" {|path("a", "c")|}).Http.status;
  check bool' "snapshot on disk" true (Sys.file_exists (Ekg_store.Store.path store "s1"));
  let deleted =
    Router.handle st (request Http.DELETE [ "v1"; "sessions"; "s1" ])
  in
  check int' "delete is 200" 200 deleted.Http.status;
  check bool' "body confirms" true (contains deleted.Http.resp_body {|"deleted":true|});
  check bool' "snapshot removed" false
    (Sys.file_exists (Ekg_store.Store.path store "s1"));
  let again = Router.handle st (request Http.DELETE [ "v1"; "sessions"; "s1" ]) in
  check int' "second delete is 404" 404 again.Http.status;
  check bool' "stable envelope" true (envelope_code again = Some "session_not_found");
  check int' "explain after delete is 404" 404
    (explain_path st "s1" {|path("a", "c")|}).Http.status;
  Registry.stop_persistence (Router.registry st)

let test_router_delete_without_store () =
  let st = Router.make_state () in
  create_closure_session st;
  let deleted = Router.handle st (request Http.DELETE [ "v1"; "sessions"; "s1" ]) in
  check int' "delete works without persistence" 200 deleted.Http.status;
  check int' "gone" 404 (explain_path st "s1" {|path("a", "c")|}).Http.status

(* --- debug endpoints + wide events ------------------------------------------ *)

let body_json (r : Http.response) =
  match Json.parse r.Http.resp_body with
  | Ok j -> j
  | Error e -> Alcotest.failf "body is not JSON (%s): %s" e r.Http.resp_body

let create_inline_session st =
  let created =
    Router.handle st
      (request
         ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
         Http.POST [ "v1"; "sessions" ])
  in
  check int' "session created" 201 created.Http.status

let explain_inline st id =
  Router.handle st
    (request
       ~body:(Json.to_string (Json.Obj [ "query", Json.str {|control("A", "C")|} ]))
       Http.POST [ "v1"; "sessions"; id; "explain" ])

let test_debug_runtime_endpoint () =
  let st = Router.make_state () in
  let r = Router.handle st (request Http.GET [ "v1"; "debug"; "runtime" ]) in
  check int' "200" 200 r.Http.status;
  let j = body_json r in
  check bool' "uptime present" true
    (match Json.member "uptime_seconds" j with
    | Some (Json.Num u) -> u >= 0.
    | _ -> false);
  (match Json.member "sampler" j with
  | Some s ->
    check bool' "sampler not started by make_state" true
      (Json.mem_bool "running" s = Some false)
  | None -> Alcotest.fail "sampler block missing");
  (match Json.member "gauges" j with
  | Some (Json.Arr gauges) ->
    let names =
      List.filter_map (fun g -> Json.mem_str "name" g) gauges
    in
    check bool' "gc heap gauge live" true
      (List.mem "ekg_runtime_gc_heap_words" names);
    check bool' "alloc rate gauge live" true
      (List.mem "ekg_runtime_alloc_rate_words_per_s" names)
  | _ -> Alcotest.fail "gauges array missing");
  match Json.member "log" j with
  | Some l ->
    check bool' "log level reported" true (Json.mem_str "level" l <> None);
    check bool' "slowlog threshold reported" true
      (Json.member "slowlog_threshold_ms" l <> None)
  | None -> Alcotest.fail "log block missing"

let test_debug_sessions_endpoint () =
  let st = Router.make_state () in
  create_inline_session st;
  check int' "explain ok" 200 (explain_inline st "s1").Http.status;
  let r = Router.handle st (request Http.GET [ "v1"; "debug"; "sessions" ]) in
  check int' "200" 200 r.Http.status;
  let j = body_json r in
  check bool' "count" true (Json.mem_int "count" j = Some 1);
  check bool' "hot count" true (Json.mem_int "hot" j = Some 1);
  match Json.member "sessions" j with
  | Some (Json.Arr [ s ]) ->
    check bool' "id" true (Json.mem_str "id" s = Some "s1");
    check bool' "LRU clock exposed" true
      (match Json.member "last_used_unix_s" s with
      | Some (Json.Num t) -> t > 0.
      | _ -> false)
  | _ -> Alcotest.fail "sessions array missing"

let test_debug_inflight_endpoint () =
  let st = Router.make_state () in
  let r = Router.handle st (request Http.GET [ "v1"; "debug"; "inflight" ]) in
  check int' "200" 200 r.Http.status;
  let j = body_json r in
  (* the debug request observes itself: it is registered in-flight
     before its handler runs *)
  check bool' "sees itself" true (Json.mem_int "count" j = Some 1);
  match Json.member "inflight" j with
  | Some (Json.Arr [ e ]) ->
    check bool' "method" true (Json.mem_str "method" e = Some "GET");
    check bool' "target" true
      (Json.mem_str "target" e = Some "/v1/debug/inflight");
    check bool' "trace id assigned" true (Json.mem_str "trace_id" e <> None);
    check bool' "elapsed" true
      (match Json.member "elapsed_ms" e with
      | Some (Json.Num ms) -> ms >= 0.
      | _ -> false)
  | _ -> Alcotest.fail "inflight array missing"

let test_debug_slowlog_endpoint () =
  (* threshold 0: every request qualifies as slow *)
  let log = Ekg_obs.Log.create ~slow_threshold_ms:0. () in
  let st = Router.make_state ~log () in
  check int' "probe" 200
    (Router.handle st (request Http.GET [ "v1"; "health" ])).Http.status;
  let r = Router.handle st (request Http.GET [ "v1"; "debug"; "slowlog" ]) in
  check int' "200" 200 r.Http.status;
  let j = body_json r in
  check bool' "threshold echoed" true
    (match Json.member "threshold_ms" j with
    | Some (Json.Num t) -> t = 0.
    | _ -> false);
  match Json.member "slow" j with
  | Some (Json.Arr (e :: _)) ->
    check bool' "entries are wide events" true
      (Json.mem_str "event" e = Some "request");
    check bool' "endpoint field" true (Json.mem_str "endpoint" e <> None);
    check bool' "trace id field" true (Json.mem_str "trace_id" e <> None);
    check bool' "duration field" true (Json.member "duration_ms" e <> None)
  | _ -> Alcotest.fail "no slow entries despite zero threshold"

let test_debug_unknown_404 () =
  let st = Router.make_state () in
  let r = Router.handle st (request Http.GET [ "v1"; "debug"; "nonsense" ]) in
  check int' "404" 404 r.Http.status;
  check bool' "envelope code" true (envelope_code r = Some "not_found");
  let bad_method =
    Router.handle st (request Http.POST [ "v1"; "debug"; "runtime" ])
  in
  check int' "405 on known debug path" 405 bad_method.Http.status;
  check bool' "method_not_allowed code" true
    (envelope_code bad_method = Some "method_not_allowed")

(* one canonical JSONL record per request, stable field set *)
let wide_event_keys =
  [
    "ts"; "level"; "event"; "duration_ms"; "trace_id"; "method"; "target";
    "endpoint"; "status"; "error_code"; "queue_wait_ms"; "session";
    "cache_hit"; "degraded"; "chase_source"; "chase_rounds"; "chase_facts";
    "plan_reorders"; "join_strategy"; "snapshot_scheduled"; "shed";
    "gc_minor_collections";
    "gc_major_collections"; "gc_promoted_words"; "gc_minor_words";
  ]

let capturing_state () =
  let lines = ref [] in
  let log =
    Ekg_obs.Log.create ~level:Ekg_obs.Log.Debug
      ~sink:(fun l -> lines := l :: !lines)
      ()
  in
  let st = Router.make_state ~log () in
  st, fun () -> List.rev !lines

let test_wide_event_per_request () =
  let st, lines = capturing_state () in
  let resp =
    Router.handle ~queue_wait_s:0.25 st (request Http.GET [ "v1"; "health" ])
  in
  (match lines () with
  | [ line ] ->
    let j =
      match Json.parse line with
      | Ok j -> j
      | Error e -> Alcotest.failf "wide event is not JSON (%s): %s" e line
    in
    List.iter
      (fun k -> check bool' ("field " ^ k) true (Json.member k j <> None))
      wide_event_keys;
    check bool' "event name" true (Json.mem_str "event" j = Some "request");
    check bool' "status" true (Json.mem_int "status" j = Some 200);
    check bool' "endpoint label" true
      (Json.mem_str "endpoint" j = Some "GET /v1/health");
    check bool' "queue wait propagated" true
      (match Json.member "queue_wait_ms" j with
      | Some (Json.Num ms) -> Float.abs (ms -. 250.) < 1e-6
      | _ -> false);
    check bool' "trace id matches the response header" true
      (Json.mem_str "trace_id" j = resp_header resp "X-Ekg-Trace-Id");
    check bool' "no error code on success" true
      (Json.mem_str "error_code" j = Some "")
  | l -> Alcotest.failf "expected exactly one wide event, got %d" (List.length l));
  ignore resp

let test_wide_event_chase_fields () =
  let st, lines = capturing_state () in
  create_inline_session st;
  check int' "explain ok" 200 (explain_inline st "s1").Http.status;
  check int' "explain again (cached)" 200 (explain_inline st "s1").Http.status;
  let missing = Router.handle st (request Http.GET [ "v1"; "nope" ]) in
  check int' "404" 404 missing.Http.status;
  match List.map (fun l -> Json.parse l) (lines ()) with
  | [ Ok created; Ok explained; Ok cached; Ok notfound ] ->
    check bool' "one event per request" true
      (List.for_all
         (fun j -> Json.mem_str "event" j = Some "request")
         [ created; explained; cached; notfound ]);
    check bool' "explain carries the session" true
      (Json.mem_str "session" explained = Some "s1");
    check bool' "cold explain chased" true
      (Json.mem_str "chase_source" explained = Some "chased");
    check bool' "chased request records its join engine" true
      (match Json.mem_str "join_strategy" explained with
      | Some ("hash" | "nested") -> true
      | Some _ | None -> false);
    check bool' "non-chased request has no join engine" true
      (Json.mem_str "join_strategy" notfound = Some "none");
    check bool' "chase rounds counted" true
      (match Json.mem_int "chase_rounds" explained with
      | Some n -> n > 0
      | None -> false);
    check bool' "chase facts counted" true
      (match Json.mem_int "chase_facts" explained with
      | Some n -> n > 0
      | None -> false);
    check bool' "cold explain is not a cache hit" true
      (Json.mem_bool "cache_hit" explained = Some false);
    check bool' "second explain hits the cache" true
      (Json.mem_bool "cache_hit" cached = Some true);
    check bool' "warm explain did not re-chase" true
      (Json.mem_str "chase_source" cached <> Some "chased");
    check bool' "404 level is warn" true
      (Json.mem_str "level" notfound = Some "warn");
    check bool' "404 error code" true
      (Json.mem_str "error_code" notfound = Some "not_found")
  | l -> Alcotest.failf "expected 4 wide events, got %d" (List.length l)

let test_chase_span_utilization_labels () =
  let st = Router.make_state ~chase_domains:2 () in
  create_inline_session st;
  check int' "explain ok" 200 (explain_inline st "s1").Http.status;
  let trace =
    Router.handle st (request Http.GET [ "v1"; "sessions"; "s1"; "trace" ])
  in
  check int' "trace served" 200 trace.Http.status;
  let body = trace.Http.resp_body in
  check bool' "workers label" true (contains body {|"workers":"2"|});
  check bool' "busy clock label" true (contains body "worker_busy_ms");
  check bool' "utilization label" true (contains body "utilization")

(* --- goal-directed query lane ------------------------------------------------ *)

let query_get st id params =
  Router.handle st (request ~query:params Http.GET [ "v1"; "sessions"; id; "query" ])

let json_of (r : Http.response) =
  match Json.parse r.Http.resp_body with
  | Ok j -> j
  | Error e -> Alcotest.failf "body is not json (%s): %s" e r.Http.resp_body

let test_query_answers_and_bindings () =
  let st = Router.make_state () in
  create_closure_session st;
  let r = query_get st "s1" [ "query", {|path("a", X)|} ] in
  check int' "query ok" 200 r.Http.status;
  let j = json_of r in
  check bool' "magic lane" true (Json.mem_str "mode" j = Some "magic");
  check bool' "both reachable nodes" true (Json.mem_int "total" j = Some 2);
  check bool' "cold" true (Json.mem_bool "cached" j = Some false);
  check bool' "answer facts rendered" true
    (contains r.Http.resp_body {|path(\"a\", \"b\")|}
    || contains r.Http.resp_body {|path("a", "b")|});
  check bool' "free variable bound in answers" true
    (contains r.Http.resp_body {|"X":|});
  (* the POST body form is the same endpoint *)
  let p =
    Router.handle st
      (request ~body:{|{"query":"path(\"a\", X)","limit":1}|} Http.POST
         [ "v1"; "sessions"; "s1"; "query" ])
  in
  check int' "post form ok" 200 p.Http.status;
  let pj = json_of p in
  check bool' "post sees the same total" true (Json.mem_int "total" pj = Some 2);
  (* a ground query has exactly one answer *)
  let g = query_get st "s1" [ "query", {|path("a", "c")|} ] in
  check bool' "ground query answered" true
    (Json.mem_int "total" (json_of g) = Some 1);
  (* an extensional predicate is answered by EDB scan, no chase at all *)
  let e = query_get st "s1" [ "query", {|e("a", X)|} ] in
  check bool' "edb lane for extensional predicates" true
    (Json.mem_str "mode" (json_of e) = Some "edb")

let test_query_pagination () =
  let st = Router.make_state () in
  create_closure_session st;
  let page1 =
    json_of (query_get st "s1" [ "query", {|path("a", X)|}; "limit", "1" ])
  in
  check bool' "total unaffected by limit" true (Json.mem_int "total" page1 = Some 2);
  let page_obj j = Option.get (Json.member "page" j) in
  check bool' "first page cursor" true
    (Json.mem_str "cursor" (page_obj page1) = Some "0");
  check bool' "next cursor points at the second answer" true
    (Json.mem_str "next_cursor" (page_obj page1) = Some "1");
  let page2 =
    json_of
      (query_get st "s1"
         [ "query", {|path("a", X)|}; "limit", "1"; "cursor", "1" ])
  in
  check bool' "last page has no next cursor" true
    (Json.mem_str "next_cursor" (page_obj page2) = None);
  (* the two pages carry distinct answers, in canonical order *)
  let first_fact j =
    match Option.bind (Json.member "answers" j) Json.get_arr with
    | Some (a :: _) -> Json.mem_str "fact" a
    | _ -> None
  in
  check bool' "pages disjoint and ordered" true
    (first_fact page1 < first_fact page2);
  let bad_cursor =
    query_get st "s1" [ "query", {|path("a", X)|}; "cursor", "x" ]
  in
  check int' "invalid cursor rejected" 400 bad_cursor.Http.status;
  check bool' "invalid_request code" true
    (envelope_code bad_cursor = Some "invalid_request");
  check int' "zero limit rejected" 400
    (query_get st "s1" [ "query", {|path("a", X)|}; "limit", "0" ]).Http.status

let test_query_invalid_atoms () =
  let st = Router.make_state () in
  create_closure_session st;
  let missing = query_get st "s1" [] in
  check int' "missing query" 400 missing.Http.status;
  check bool' "missing query is invalid_request" true
    (envelope_code missing = Some "invalid_request");
  let broken = query_get st "s1" [ "query", "broken(" ] in
  check int' "unparsable atom" 400 broken.Http.status;
  check bool' "invalid_atom code" true (envelope_code broken = Some "invalid_atom");
  let unknown = query_get st "s1" [ "query", {|zzz("q")|} ] in
  check int' "unknown predicate" 400 unknown.Http.status;
  check bool' "unknown predicate is invalid_atom" true
    (envelope_code unknown = Some "invalid_atom");
  check int' "bad explain mode" 400
    (query_get st "s1" [ "query", {|path("a", X)|}; "explain", "bogus" ])
      .Http.status;
  check int' "bad strategy" 400
    (query_get st "s1" [ "query", {|path("a", X)|}; "strategy", "bogus" ])
      .Http.status;
  (* satellite consistency: GET explain speaks the same grammar and the
     same error vocabulary *)
  let explain_broken =
    Router.handle st
      (request ~query:[ "query", "broken(" ] Http.GET
         [ "v1"; "sessions"; "s1"; "explain" ])
  in
  check int' "GET explain rejects the same atom" 400 explain_broken.Http.status;
  check bool' "with the same code" true
    (envelope_code explain_broken = Some "invalid_atom")

let test_query_cache_semantics () =
  let st = Router.make_state () in
  create_closure_session st;
  let ask () = json_of (query_get st "s1" [ "query", {|path("a", X)|} ]) in
  let cold = ask () in
  check bool' "cold: rewrite computed" true
    (Json.mem_bool "rewrite_cached" cold = Some false);
  check bool' "cold: answers computed" true
    (Json.mem_bool "cached" cold = Some false);
  let warm = ask () in
  check bool' "warm: rewrite reused" true
    (Json.mem_bool "rewrite_cached" warm = Some true);
  check bool' "warm: answers reused" true
    (Json.mem_bool "cached" warm = Some true);
  (* same shape, different constant: the specialization is shared, the
     answer set is not *)
  let sibling = json_of (query_get st "s1" [ "query", {|path("b", X)|} ]) in
  check bool' "sibling shape: rewrite reused" true
    (Json.mem_bool "rewrite_cached" sibling = Some true);
  check bool' "sibling shape: answers computed" true
    (Json.mem_bool "cached" sibling = Some false);
  (* a fact update must invalidate cached answers for touched predicates *)
  let added =
    Router.handle st
      (request ~body:{|{"facts":["e(\"c\", \"d\")"]}|} Http.POST
         [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "edge added" 200 added.Http.status;
  let refreshed = ask () in
  check bool' "update evicted the cached answers" true
    (Json.mem_bool "cached" refreshed = Some false);
  check bool' "and the new consequence appears" true
    (Json.mem_int "total" refreshed = Some 3);
  (* retraction invalidates too *)
  let removed =
    Router.handle st
      (request ~body:{|{"facts":["e(\"b\", \"c\")"]}|} Http.DELETE
         [ "v1"; "sessions"; "s1"; "facts" ])
  in
  check int' "edge removed" 200 removed.Http.status;
  let shrunk = ask () in
  check bool' "retraction evicted the cached answers" true
    (Json.mem_bool "cached" shrunk = Some false);
  check bool' "the broken chain is gone" true
    (Json.mem_int "total" shrunk = Some 1);
  (* the lane's counter series advanced *)
  let prom =
    Router.handle st
      (request ~query:[ "format", "prometheus" ] Http.GET [ "v1"; "metrics" ])
  in
  let advanced name =
    contains prom.Http.resp_body name
    && not (contains prom.Http.resp_body (name ^ " 0\n"))
  in
  check bool' "requests counted" true (advanced "ekg_query_requests_total");
  check bool' "rewrite hits counted" true
    (advanced "ekg_query_rewrite_cache_hits_total");
  check bool' "answer hits counted" true
    (advanced "ekg_query_answer_cache_hits_total");
  check bool' "invalidations counted" true
    (advanced "ekg_query_cache_invalidations_total")

let test_query_dormant_stays_dormant () =
  (* the whole point of the lane: a point query against a session whose
     materialization was never built must not build (or wait on) it *)
  let metrics = Metrics.create () in
  let reg = Registry.create metrics in
  let session = registry_inline_session reg closure_program in
  (match Registry.query reg session (parse_atom_exn {|path("a", X)|}) with
  | Ok o ->
    check int' "two answers" 2
      (List.length o.Registry.qo_result.Ekg_core.Pipeline.q_answers)
  | Error _ -> Alcotest.fail "query failed");
  check bool' "no materialization was built" true (session.Registry.chase = None);
  check bool' "no full-chase cache traffic" true
    (Metrics.cache_counts metrics = (0, 0));
  (* and through the router: a query then a session listing shows the
     chase still cold *)
  let st = Router.make_state () in
  create_closure_session st;
  check int' "routed query ok" 200
    (query_get st "s1" [ "query", {|path("a", X)|} ]).Http.status;
  let sessions = Router.handle st (request Http.GET [ "v1"; "sessions" ]) in
  check bool' "listing shows the chase was never run" true
    (contains sessions.Http.resp_body {|"chase_cached":false|})

let test_query_explain_modes () =
  let st = Router.make_state () in
  create_closure_session st;
  let none = query_get st "s1" [ "query", {|path("a", X)|} ] in
  check bool' "no explanation by default" true
    (not (contains none.Http.resp_body {|"explanation"|}));
  let full =
    query_get st "s1" [ "query", {|path("a", X)|}; "explain", "full" ]
  in
  check int' "full mode ok" 200 full.Http.status;
  check bool' "answers carry template explanations" true
    (contains full.Http.resp_body {|"explanation"|}
    && contains full.Http.resp_body {|"proof_steps"|}
    && contains full.Http.resp_body {|"text"|});
  let skeleton =
    query_get st "s1" [ "query", {|path("a", X)|}; "explain", "skeleton" ]
  in
  check int' "skeleton mode ok" 200 skeleton.Http.status;
  check bool' "skeleton still proves" true
    (contains skeleton.Http.resp_body {|"deterministic_text"|})

let test_query_deadline_504 () =
  let st = Router.make_state ~fault:(Fault.Slow_chase 5.0) () in
  create_closure_session st;
  let t0 = Unix.gettimeofday () in
  let r =
    Router.handle st
      (request
         ~headers:[ "x-ekg-deadline-ms", "50" ]
         ~query:[ "query", {|path("a", X)|} ]
         Http.GET
         [ "v1"; "sessions"; "s1"; "query" ])
  in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  check int' "504" 504 r.Http.status;
  check bool' "deadline_exceeded code" true
    (envelope_code r = Some "deadline_exceeded");
  check bool' "retryable" true (envelope_retryable r = Some true);
  check bool' "partial chase stats in detail" true
    (contains r.Http.resp_body {|"detail"|}
    && contains r.Http.resp_body {|"rounds"|}
    && contains r.Http.resp_body {|"elapsed_ms"|});
  check bool' "answered near the deadline, not the fault window" true
    (elapsed_ms < 1000.);
  (* a failed run is not cached: the roomy retry recomputes and succeeds *)
  let retry =
    Router.handle st
      (request
         ~headers:[ "x-ekg-deadline-ms", "30000" ]
         ~query:[ "query", {|path("a", X)|} ]
         Http.GET
         [ "v1"; "sessions"; "s1"; "query" ])
  in
  check int' "roomy retry succeeds" 200 retry.Http.status;
  check bool' "and is not served from a cache" true
    (Json.mem_bool "cached" (json_of retry) = Some false)

let test_query_wide_events () =
  let st, lines = capturing_state () in
  create_closure_session st;
  check int' "cold query" 200
    (query_get st "s1" [ "query", {|path("a", X)|} ]).Http.status;
  check int' "warm query" 200
    (query_get st "s1" [ "query", {|path("a", X)|} ]).Http.status;
  match List.map (fun l -> Json.parse l) (lines ()) with
  | [ Ok _created; Ok cold; Ok warm ] ->
    List.iter
      (fun k ->
        check bool' ("cold query field " ^ k) true (Json.member k cold <> None))
      wide_event_keys;
    check bool' "cold query ran the magic lane" true
      (Json.mem_str "chase_source" cold = Some "magic");
    check bool' "cold query is not a cache hit" true
      (Json.mem_bool "cache_hit" cold = Some false);
    check bool' "scoped chase counted its facts" true
      (match Json.mem_int "chase_facts" cold with Some n -> n > 0 | None -> false);
    check bool' "warm query hits the answer cache" true
      (Json.mem_bool "cache_hit" warm = Some true)
  | l -> Alcotest.failf "expected 3 wide events, got %d" (List.length l)

let test_explain_get_parity () =
  (* GET explain shares the POST endpoint's grammar, cache and the
     paged read envelope *)
  let st = Router.make_state () in
  create_closure_session st;
  let get params =
    Router.handle st
      (request ~query:params Http.GET [ "v1"; "sessions"; "s1"; "explain" ])
  in
  let g = get [ "query", {|path("a", "c")|} ] in
  check int' "GET explain ok" 200 g.Http.status;
  let gj = json_of g in
  check bool' "cold GET is uncached" true (Json.mem_bool "cached" gj = Some false);
  check bool' "paged envelope present" true
    (Json.member "page" gj <> None && Json.mem_int "total" gj <> None);
  (* the POST form is served from the entry the GET populated *)
  let p = explain_path st "s1" {|path("a", "c")|} in
  check int' "POST explain ok" 200 p.Http.status;
  check bool' "one cache behind both verbs" true
    (Json.mem_bool "cached" (json_of p) = Some true);
  check int' "missing query parameter" 400 (get []).Http.status;
  let bad = get [ "query", {|path("a", "c")|}; "limit", "nope" ] in
  check int' "invalid limit rejected" 400 bad.Http.status;
  check bool' "invalid_request code" true
    (envelope_code bad = Some "invalid_request")

(* legacy (pre-/v1) trace path still answers with a redirect *)
let test_legacy_trace_redirect () =
  let st = Router.make_state () in
  let r =
    Router.handle st (request Http.GET [ "sessions"; "s1"; "trace" ])
  in
  check int' "301" 301 r.Http.status;
  check bool' "location" true
    (resp_header r "Location" = Some "/v1/sessions/s1/trace")

(* --- prometheus exposition validation ---------------------------------------- *)

let float_of_prom s =
  match s with
  | "+Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some Float.nan
  | s -> float_of_string_opt s

let is_metric_name s =
  s <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s
  && not (match s.[0] with '0' .. '9' -> true | _ -> false)

(* parse one sample line into (name, labels, value) or fail *)
let parse_sample_line line =
  let name_end =
    match String.index_opt line '{' with
    | Some i -> i
    | None -> (
      match String.index_opt line ' ' with
      | Some i -> i
      | None -> Alcotest.failf "no value separator: %s" line)
  in
  let name = String.sub line 0 name_end in
  if not (is_metric_name name) then Alcotest.failf "bad metric name: %s" line;
  let labels, rest =
    if name_end < String.length line && line.[name_end] = '{' then begin
      let close =
        match String.index_from_opt line name_end '}' with
        | Some i -> i
        | None -> Alcotest.failf "unclosed label set: %s" line
      in
      let raw = String.sub line (name_end + 1) (close - name_end - 1) in
      let pairs =
        if raw = "" then []
        else
          List.map
            (fun kv ->
              match String.index_opt kv '=' with
              | Some i ->
                let k = String.sub kv 0 i in
                let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                if String.length v < 2 || v.[0] <> '"'
                   || v.[String.length v - 1] <> '"'
                then Alcotest.failf "unquoted label value: %s" line;
                k, String.sub v 1 (String.length v - 2)
              | None -> Alcotest.failf "label without '=': %s" line)
            (String.split_on_char ',' raw)
      in
      pairs, String.sub line (close + 1) (String.length line - close - 1)
    end
    else
      [], String.sub line name_end (String.length line - name_end)
  in
  let value =
    match String.split_on_char ' ' (String.trim rest) with
    | [ v ] | [ v; _ ] -> (
      match float_of_prom v with
      | Some f -> f
      | None -> Alcotest.failf "unparseable value %S: %s" v line)
    | _ -> Alcotest.failf "malformed sample tail: %s" line
  in
  name, labels, value

let test_prometheus_exposition_valid () =
  let st = Router.make_state () in
  create_inline_session st;
  check int' "explain ok" 200 (explain_inline st "s1").Http.status;
  ignore (Router.handle st (request Http.GET [ "v1"; "nope" ]));
  let r =
    Router.handle st
      (request ~query:[ "format", "prometheus" ] Http.GET [ "v1"; "metrics" ])
  in
  check int' "200" 200 r.Http.status;
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' r.Http.resp_body)
  in
  check bool' "non-trivial exposition" true (List.length lines > 20);
  let samples =
    List.filter_map
      (fun line ->
        if String.length line >= 6 && String.sub line 0 6 = "# HELP" then None
        else if String.length line >= 6 && String.sub line 0 6 = "# TYPE" then
          None
        else if String.length line >= 1 && line.[0] = '#' then
          Alcotest.failf "unknown comment form: %s" line
        else Some (parse_sample_line line))
      lines
  in
  check bool' "samples parsed" true (samples <> []);
  (* every histogram's cumulative buckets must be monotone in [le],
     ending at the +Inf bucket, which must equal the _count series *)
  let bucket_suffix = "_bucket" in
  let strip_le labels = List.remove_assoc "le" labels in
  let series = Hashtbl.create 16 in
  List.iter
    (fun (name, labels, value) ->
      let nl = String.length name and sl = String.length bucket_suffix in
      if nl > sl && String.sub name (nl - sl) sl = bucket_suffix then begin
        let base = String.sub name 0 (nl - sl) in
        let key = base, List.sort compare (strip_le labels) in
        let le =
          match List.assoc_opt "le" labels with
          | Some le -> (
            match float_of_prom le with
            | Some f -> f
            | None -> Alcotest.failf "bad le bound on %s" name)
          | None -> Alcotest.failf "_bucket without le on %s" name
        in
        let prev = Option.value (Hashtbl.find_opt series key) ~default:[] in
        Hashtbl.replace series key ((le, value) :: prev)
      end)
    samples;
  check bool' "histograms present" true (Hashtbl.length series > 0);
  Hashtbl.iter
    (fun (base, labels) buckets ->
      let sorted =
        List.sort (fun (a, _) (b, _) -> Float.compare a b) buckets
      in
      let rec monotone = function
        | (_, c1) :: ((_, c2) :: _ as rest) ->
          if c1 > c2 then
            Alcotest.failf "non-monotone buckets in %s" base;
          monotone rest
        | _ -> ()
      in
      monotone sorted;
      match List.rev sorted with
      | (inf_le, inf_count) :: _ ->
        check bool' (base ^ " ends at +Inf") true (inf_le = infinity);
        let count =
          List.find_map
            (fun (name, ls, v) ->
              if name = base ^ "_count"
                 && List.sort compare ls = labels
              then Some v
              else None)
            samples
        in
        check bool' (base ^ " +Inf equals _count") true
          (count = Some inf_count)
      | [] -> ())
    series;
  (* the startup declarations: mandatory series visible with zero traffic *)
  let fresh = Router.make_state () in
  let scrape =
    Router.handle fresh
      (request ~query:[ "format", "prometheus" ] Http.GET [ "v1"; "metrics" ])
  in
  List.iter
    (fun name ->
      check bool' (name ^ " declared at startup") true
        (contains scrape.Http.resp_body name))
    [
      "ekg_chase_runs_total";
      "ekg_chase_rounds_total";
      "ekg_chase_seconds_total";
      "ekg_chase_agg_superseded_total";
      "ekg_server_shed_total";
      "ekg_request_deadline_exceeded_total";
      "ekg_lock_wait_seconds";
      "ekg_lock_hold_seconds";
      "ekg_lock_acquisitions_total";
      "ekg_lock_contended_total";
    ];
  (* the registry lock histograms carry real observations after traffic *)
  check bool' "registry lock wait histogram live" true
    (contains r.Http.resp_body {|ekg_lock_wait_seconds_count{lock="registry"}|});
  check bool' "registry lock hold histogram live" true
    (contains r.Http.resp_body {|ekg_lock_hold_seconds_count{lock="registry"}|});
  (* with a store configured the snapshotter lock + gauges are declared *)
  with_store_dir (fun dir ->
      let st = Router.make_state ~store:(open_store_exn dir) () in
      let scrape =
        Router.handle st
          (request ~query:[ "format", "prometheus" ] Http.GET
             [ "v1"; "metrics" ])
      in
      List.iter
        (fun needle ->
          check bool' (needle ^ " with store") true
            (contains scrape.Http.resp_body needle))
        [
          {|ekg_lock_wait_seconds_count{lock="snapshotter"}|};
          {|ekg_lock_hold_seconds_count{lock="snapshotter"}|};
          "ekg_store_snapshot_queue_depth";
          "ekg_store_snapshot_stall_seconds";
        ];
      Registry.stop_persistence (Router.registry st))

(* --- loopback integration -------------------------------------------------- *)

let http_call ?(headers = []) ~port ~meth ~path ~body () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let extra =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
      in
      let payload =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: localhost\r\n%sContent-Length: %d\r\n\r\n%s"
          meth path extra (String.length body) body
      in
      let _ = Unix.write_substring fd payload 0 (String.length payload) in
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      let status = int_of_string (String.sub raw 9 3) in
      let head, body =
        match Ekg_kernel.Textutil.split_on_string ~sep:"\r\n\r\n" raw with
        | head :: rest -> head, String.concat "\r\n\r\n" rest
        | [] -> "", ""
      in
      let resp_headers =
        List.filter_map
          (fun line ->
            match String.index_opt line ':' with
            | Some i ->
              Some
                ( String.lowercase_ascii (String.sub line 0 i),
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)) )
            | None -> None)
          (Ekg_kernel.Textutil.split_on_string ~sep:"\r\n" head)
      in
      status, resp_headers, body)

let wire_envelope_code body =
  match Json.parse body with
  | Ok j -> Option.bind (Json.member "error" j) (Json.mem_str "code")
  | Error _ -> None

let test_server_integration () =
  let st = Router.make_state ~root:".." () in
  let config = { Server.default_config with port = 0; domains = 2 } in
  let server = Server.start ~config st in
  let port = Server.port server in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let status, _, body = http_call ~port ~meth:"GET" ~path:"/v1/health" ~body:"" () in
  check int' "health status" 200 status;
  check bool' "health body" true (contains body {|"status":"ok"|});
  (* the legacy path answers a redirect over the wire *)
  let status, hs, body = http_call ~port ~meth:"GET" ~path:"/health" ~body:"" () in
  check int' "legacy health is 301" 301 status;
  check bool' "legacy Location" true
    (List.assoc_opt "location" hs = Some "/v1/health");
  check bool' "legacy Deprecation header" true
    (List.assoc_opt "deprecation" hs = Some "true");
  check bool' "redirect carries the envelope" true
    (wire_envelope_code body = Some "moved_permanently");
  (* session loaded from the repo's programs/ directory *)
  let status, _, body =
    http_call ~port ~meth:"POST" ~path:"/v1/sessions"
      ~body:
        {|{"name":"cc","program_path":"programs/company_control.vada","glossary_path":"programs/company_control.dict","facts_dir":"data/company_control"}|}
      ()
  in
  if status <> 201 then Alcotest.failf "session create returned %d: %s" status body;
  check bool' "session id" true (contains body {|"id":"s1"|});
  let explain () =
    http_call ~port ~meth:"POST" ~path:"/v1/sessions/s1/explain"
      ~body:{|{"query":"control(\"A\", \"D\")"}|} ()
  in
  let status, _, body = explain () in
  check int' "explain status" 200 status;
  check bool' "explanation text present" true
    (contains body "exercises control over");
  (* the second identical request is served from the explanation cache *)
  let status, _, body = explain () in
  check int' "second explain status" 200 status;
  check bool' "second explain is cached" true (contains body {|"cached":true|});
  let status, _, body =
    http_call ~port ~meth:"POST" ~path:"/v1/sessions/s1/explain"
      ~body:{|{"query":"control(\"A\" broken"}|} ()
  in
  check int' "malformed query is 400, worker survives" 400 status;
  check bool' "invalid_atom envelope over the wire" true
    (wire_envelope_code body = Some "invalid_atom");
  let status, _, body =
    http_call ~port ~meth:"GET" ~path:"/v1/sessions/s1/trace" ~body:"" ()
  in
  check int' "trace endpoint" 200 status;
  check bool' "trace names the request span" true
    (contains body {|"name":"explain-request"|});
  let status, _, body =
    http_call ~port ~meth:"POST" ~path:"/v1/sessions/s1/explain:batch"
      ~body:{|{"queries":["control(\"A\", \"D\")","control(\"A\", \"B\")"]}|} ()
  in
  check int' "batch over the wire" 200 status;
  check bool' "batch counts" true (contains body {|"ok":2|});
  let status, _, body = http_call ~port ~meth:"GET" ~path:"/v1/metrics" ~body:"" () in
  check int' "metrics status" 200 status;
  (* one miss (first explain), one hit (batch): the repeat explain was
     answered from the explanation cache and never reached the chase *)
  check bool' "cache hits recorded" true (contains body {|"hits":1|});
  check bool' "one cache miss recorded" true
    (contains body {|"misses":1|});
  (* live fact update over the wire: company control uses aggregation, so
     the update falls back to a full recompute but still succeeds *)
  let status, _, body =
    http_call ~port ~meth:"POST" ~path:"/v1/sessions/s1/facts"
      ~body:{|{"facts":["own(\"D\", \"Z\", 0.9)"]}|} ()
  in
  check int' "facts add over the wire" 200 status;
  check bool' "update reports the op" true (contains body {|"op":"add"|});
  let status, _, body =
    http_call ~port ~meth:"GET" ~path:"/v1/metrics?format=prometheus" ~body:"" ()
  in
  check int' "prometheus scrape status" 200 status;
  check bool' "prometheus exposition" true
    (contains body "# TYPE ekg_requests_total counter");
  check bool' "chase series after explain" true
    (contains body "ekg_chase_rounds_total");
  check bool' "stage series after explain" true
    (contains body "ekg_pipeline_stage_seconds_total");
  check bool' "incremental series after update" true
    (contains body "ekg_chase_incremental_rounds_total")

let test_server_shedding () =
  (* high_water = 0: every non-probe request is shed deterministically,
     while health/metrics stay responsive on the shed lane *)
  let st = Router.make_state () in
  let config =
    { Server.default_config with port = 0; domains = 1; queue_high_water = 0 }
  in
  let server = Server.start ~config st in
  let port = Server.port server in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let status, hs, body =
    http_call ~port ~meth:"POST" ~path:"/v1/sessions"
      ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
      ()
  in
  check int' "shed with 503" 503 status;
  check bool' "Retry-After present" true
    (List.assoc_opt "retry-after" hs = Some "1");
  check bool' "overloaded envelope" true
    (wire_envelope_code body = Some "overloaded");
  let status, _, body = http_call ~port ~meth:"GET" ~path:"/v1/health" ~body:"" () in
  check int' "health survives overload" 200 status;
  check bool' "health still says ok" true (contains body {|"status":"ok"|});
  let status, _, body =
    http_call ~port ~meth:"GET" ~path:"/v1/metrics?format=prometheus" ~body:"" ()
  in
  check int' "metrics survive overload" 200 status;
  check bool' "shed counter advanced" true
    (contains body "ekg_server_shed_total 1")

let test_server_shed_under_load () =
  (* a delay fault pins the single worker; concurrent clients overflow
     the depth-1 queue.  Health must stay fast throughout, some clients
     must be shed, and admitted ones must still succeed. *)
  let st = Router.make_state ~fault:(Fault.Delay 1.0) () in
  let config =
    { Server.default_config with port = 0; domains = 1; queue_high_water = 1 }
  in
  let server = Server.start ~config st in
  let port = Server.port server in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let body = Json.to_string (Json.Obj [ "program", Json.str inline_program ]) in
  let pending = Atomic.make 6 in
  let clients =
    List.init 6 (fun _ ->
        Domain.spawn (fun () ->
            let status, _, _ =
              http_call ~port ~meth:"POST" ~path:"/v1/sessions" ~body ()
            in
            Atomic.decr pending;
            status))
  in
  (* the worker is pinned by the delay fault for a full second per
     admitted request, so the load window lasts seconds: health must
     keep answering 200 for its whole duration (wall-clock bounds would
     be flaky when the whole suite runs in parallel, so we assert
     liveness-during-load instead) *)
  let probes_during_load = ref 0 in
  let rec probe n =
    if n > 0 && Atomic.get pending > 0 then begin
      let status, _, _ =
        http_call ~port ~meth:"GET" ~path:"/v1/health" ~body:"" ()
      in
      check int' "health under load" 200 status;
      if Atomic.get pending > 0 then incr probes_during_load;
      Unix.sleepf 0.05;
      probe (n - 1)
    end
  in
  probe 200;
  let statuses = List.map Domain.join clients in
  check bool' "health stayed responsive during the load window" true
    (!probes_during_load > 0);
  check bool' "some clients were shed" true (List.mem 503 statuses);
  check bool' "some clients were admitted" true (List.mem 201 statuses);
  check bool' "only 201/503 observed" true
    (List.for_all (fun s -> s = 201 || s = 503) statuses)

let test_server_drain_on_stop () =
  (* requests queued when stop is requested must still be answered *)
  let st = Router.make_state ~fault:(Fault.Delay 0.2) () in
  let config = { Server.default_config with port = 0; domains = 1 } in
  let server = Server.start ~config st in
  let port = Server.port server in
  let body = Json.to_string (Json.Obj [ "program", Json.str inline_program ]) in
  let clients =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let status, _, _ =
              http_call ~port ~meth:"POST" ~path:"/v1/sessions" ~body ()
            in
            status))
  in
  (* let the clients connect and enqueue behind the delayed worker *)
  Unix.sleepf 0.05;
  Server.stop server;
  let statuses = List.map Domain.join clients in
  check int' "every in-flight request was drained" 3
    (List.length (List.filter (fun s -> s = 201) statuses))

(* --------------------------------------------------------------------------- *)

let () =
  Alcotest.run "ekg_server"
    [
      ( "json",
        [
          Alcotest.test_case "printing" `Quick test_json_print;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "http",
        [
          Alcotest.test_case "happy path" `Quick test_http_happy_path;
          Alcotest.test_case "GET without length" `Quick test_http_get_without_length;
          Alcotest.test_case "missing content-length" `Quick test_http_missing_content_length;
          Alcotest.test_case "oversized body" `Quick test_http_oversized_body;
          Alcotest.test_case "bad requests" `Quick test_http_bad_requests;
          Alcotest.test_case "header limit" `Quick test_http_header_limit;
          Alcotest.test_case "response serialization" `Quick test_http_response_serialization;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "histogram edges" `Quick test_hist_edges;
          Alcotest.test_case "counters + json" `Quick test_metrics_counters;
        ] );
      ( "chase errors",
        [
          Alcotest.test_case "unstratifiable" `Quick test_chase_checked_unstratifiable;
          Alcotest.test_case "inconsistent" `Quick test_chase_checked_inconsistent;
          Alcotest.test_case "divergent classification" `Quick
            test_chase_checked_divergent_is_server_side;
        ] );
      ( "registry",
        [
          Alcotest.test_case "cache accounting" `Quick test_registry_cache_accounting;
          Alcotest.test_case "path containment" `Quick test_registry_path_containment;
          Alcotest.test_case "spec decoding" `Quick test_registry_spec_decoding;
        ] );
      ( "errors",
        [ Alcotest.test_case "envelope codes" `Quick test_error_envelope_codes ] );
      ( "router",
        [
          Alcotest.test_case "status mapping" `Quick test_router_statuses;
          Alcotest.test_case "legacy redirects" `Quick test_router_legacy_redirect;
          Alcotest.test_case "observability" `Quick test_router_observability;
          Alcotest.test_case "deadline 504" `Quick test_router_deadline_504;
          Alcotest.test_case "degraded explain" `Quick test_router_degraded_explain;
          Alcotest.test_case "batch explain" `Quick test_router_batch_explain;
        ] );
      ( "facts-updates",
        [
          Alcotest.test_case "live add/retract" `Quick test_router_facts_live_updates;
          Alcotest.test_case "fingerprint endpoint" `Quick
            test_router_fingerprint_endpoint;
          Alcotest.test_case "validation" `Quick test_router_facts_validation;
          Alcotest.test_case "selective cache invalidation" `Quick
            test_router_facts_selective_invalidation;
          Alcotest.test_case "aggregate falls back" `Quick
            test_router_facts_aggregate_falls_back;
          Alcotest.test_case "dormant session updates" `Quick
            test_registry_update_before_materialize;
          Alcotest.test_case "inconsistent update preserves state" `Quick
            test_router_facts_inconsistent_preserves_state;
          Alcotest.test_case "failed update keeps snapshot" `Quick
            test_registry_failed_update_keeps_snapshot;
          Alcotest.test_case "duplicate add deduped" `Quick
            test_registry_duplicate_add_deduped;
          Alcotest.test_case "stale generation not cached" `Quick
            test_registry_stale_generation_not_cached;
        ] );
      ( "query lane",
        [
          Alcotest.test_case "answers + bindings" `Quick
            test_query_answers_and_bindings;
          Alcotest.test_case "pagination" `Quick test_query_pagination;
          Alcotest.test_case "invalid atoms" `Quick test_query_invalid_atoms;
          Alcotest.test_case "cache semantics" `Quick test_query_cache_semantics;
          Alcotest.test_case "dormant stays dormant" `Quick
            test_query_dormant_stays_dormant;
          Alcotest.test_case "explain modes" `Quick test_query_explain_modes;
          Alcotest.test_case "deadline 504" `Quick test_query_deadline_504;
          Alcotest.test_case "wide events" `Quick test_query_wide_events;
          Alcotest.test_case "GET explain parity" `Quick test_explain_get_parity;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "warm restore after restart" `Quick
            test_persistence_warm_restore_after_restart;
          Alcotest.test_case "corrupt snapshot falls back" `Quick
            test_persistence_corrupt_snapshot_falls_back;
          Alcotest.test_case "LRU eviction" `Quick test_persistence_lru_eviction;
          Alcotest.test_case "DELETE /v1/sessions/:id" `Quick
            test_router_delete_session;
          Alcotest.test_case "DELETE without a store" `Quick
            test_router_delete_without_store;
        ] );
      ( "debug endpoints",
        [
          Alcotest.test_case "runtime" `Quick test_debug_runtime_endpoint;
          Alcotest.test_case "sessions" `Quick test_debug_sessions_endpoint;
          Alcotest.test_case "inflight" `Quick test_debug_inflight_endpoint;
          Alcotest.test_case "slowlog" `Quick test_debug_slowlog_endpoint;
          Alcotest.test_case "unknown path 404" `Quick test_debug_unknown_404;
        ] );
      ( "wide events",
        [
          Alcotest.test_case "one per request, full schema" `Quick
            test_wide_event_per_request;
          Alcotest.test_case "chase + cache fields" `Quick
            test_wide_event_chase_fields;
          Alcotest.test_case "chase span utilization labels" `Quick
            test_chase_span_utilization_labels;
          Alcotest.test_case "legacy trace redirect" `Quick
            test_legacy_trace_redirect;
        ] );
      ( "prometheus exposition",
        [
          Alcotest.test_case "every line valid + buckets monotone" `Quick
            test_prometheus_exposition_valid;
        ] );
      ( "integration",
        [
          Alcotest.test_case "loopback server" `Quick test_server_integration;
          Alcotest.test_case "deterministic shedding" `Quick test_server_shedding;
          Alcotest.test_case "shed under load" `Quick test_server_shed_under_load;
          Alcotest.test_case "drain on stop" `Quick test_server_drain_on_stop;
        ] );
    ]
