(* Tests for the explanation service: JSON codec round-trips, the HTTP
   request parser, metrics histogram quantiles, the typed chase errors,
   the session registry's cache accounting, router status mapping, and
   one loopback-socket integration test against a live server. *)

open Ekg_server

let contains haystack needle =
  List.length (Ekg_kernel.Textutil.split_on_string ~sep:needle haystack) > 1

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int
let string' = Alcotest.string

let json_t =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Json.to_string j))
    ( = )

(* --- json ------------------------------------------------------------------ *)

let roundtrip j =
  match Json.parse (Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "reparse: %s" e

let test_json_print () =
  check string' "object"
    {|{"a":1,"b":[true,null,"x"]}|}
    (Json.to_string
       (Json.Obj [ "a", Json.int 1; "b", Json.Arr [ Json.Bool true; Json.Null; Json.str "x" ] ]));
  check string' "integral floats have no point" "42" (Json.to_string (Json.num 42.));
  check string' "fractions survive" "0.125" (Json.to_string (Json.num 0.125));
  check string' "escapes" {|"a\"b\\c\nd\te"|} (Json.to_string (Json.str "a\"b\\c\nd\te"));
  check string' "control chars" {|"\u0001"|} (Json.to_string (Json.str "\001"))

let test_json_roundtrip () =
  let deep =
    Json.Obj
      [
        "text", Json.str "quotes \" backslash \\ newline \n tab \t unicode \xc3\xa9";
        "nums", Json.Arr [ Json.int 0; Json.int (-17); Json.num 3.5; Json.num 1e-3 ];
        "nested", Json.Obj [ "empty_arr", Json.Arr []; "empty_obj", Json.Obj [] ];
        "flag", Json.Bool false;
        "nothing", Json.Null;
      ]
  in
  check json_t "deep round-trip" deep (roundtrip deep)

let test_json_parse_escapes () =
  (match Json.parse {|"caf\u00e9 \ud83d\ude00"|} with
  | Ok (Json.Str s) -> check string' "utf8 from \\u" "caf\xc3\xa9 \xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse: %s" e);
  (match Json.parse "  [1, 2,\t3]\n" with
  | Ok j -> check json_t "whitespace" (Json.Arr [ Json.int 1; Json.int 2; Json.int 3 ]) j
  | Error e -> Alcotest.failf "parse: %s" e)

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed %S" s
    | Error _ -> ()
  in
  List.iter bad
    [ "{"; "[1,]"; "{\"a\" 1}"; "\"unterminated"; "nul"; "1 2"; "{\"a\":}"; "\"\\u12"; "\"\\ud800\"" ]

let test_json_accessors () =
  let j = Json.Obj [ "s", Json.str "x"; "n", Json.int 7; "b", Json.Bool true; "z", Json.Null ] in
  check bool' "mem_str" true (Json.mem_str "s" j = Some "x");
  check bool' "mem_int" true (Json.mem_int "n" j = Some 7);
  check bool' "mem_bool" true (Json.mem_bool "b" j = Some true);
  check bool' "null reads as absent" true (Json.member "z" j = None);
  check bool' "missing" true (Json.member "w" j = None)

(* --- http parser ----------------------------------------------------------- *)

let parse = Http.parse_request_string

let test_http_happy_path () =
  let req =
    "POST /sessions/s1/explain?v=1&q=a%20b HTTP/1.1\r\nHost: localhost\r\n\
     Content-Type: application/json\r\nContent-Length: 15\r\n\r\n{\"query\": \"x\"}X"
  in
  match parse req with
  | Error _ -> Alcotest.fail "happy path rejected"
  | Ok r ->
    check bool' "method" true (r.Http.meth = Http.POST);
    check bool' "path segments" true (r.Http.path = [ "sessions"; "s1"; "explain" ]);
    check bool' "query decoded" true (r.Http.query = [ "v", "1"; "q", "a b" ]);
    check string' "body by content-length" "{\"query\": \"x\"}X" r.Http.body;
    check bool' "header lookup is case-insensitive" true
      (Http.header r "content-TYPE" = Some "application/json")

let test_http_get_without_length () =
  match parse "GET /health HTTP/1.1\r\nHost: x\r\n\r\n" with
  | Ok r ->
    check bool' "GET" true (r.Http.meth = Http.GET);
    check string' "empty body" "" r.Http.body
  | Error _ -> Alcotest.fail "bare GET rejected"

let test_http_missing_content_length () =
  match parse "POST /sessions HTTP/1.1\r\nHost: x\r\n\r\n{}" with
  | Error Http.Length_required -> ()
  | Error _ -> Alcotest.fail "wrong error for missing Content-Length"
  | Ok _ -> Alcotest.fail "POST without Content-Length accepted"

let test_http_oversized_body () =
  let req = "POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n" in
  (match parse ~max_body_bytes:1024 req with
  | Error (Http.Payload_too_large limit) -> check int' "limit reported" 1024 limit
  | Error _ -> Alcotest.fail "wrong error for oversized body"
  | Ok _ -> Alcotest.fail "oversized body accepted");
  check int' "413 maps" 413 (Http.error_status (Http.Payload_too_large 1024))

let test_http_bad_requests () =
  let bad s =
    match parse s with
    | Error (Http.Bad_request _) -> ()
    | Error _ -> Alcotest.failf "wrong error class for %S" s
    | Ok _ -> Alcotest.failf "accepted malformed %S" s
  in
  bad "NONSENSE\r\n\r\n";
  bad "GET /x SMTP/1.0\r\n\r\n";
  bad "GET nopath HTTP/1.1\r\n\r\n";
  bad "POST /x HTTP/1.1\r\nContent-Length: tw0\r\n\r\n";
  bad "GET /x HTTP/1.1\r\nbroken header line\r\n\r\n";
  (* truncated before the blank line *)
  bad "GET /x HTTP/1.1\r\nHost: y\r\n"

let test_http_header_limit () =
  let req =
    "GET / HTTP/1.1\r\nBig: " ^ String.make 4096 'x' ^ "\r\n\r\n"
  in
  match parse ~max_header_bytes:256 req with
  | Error (Http.Headers_too_large _) -> ()
  | _ -> Alcotest.fail "oversized headers accepted"

let test_http_response_serialization () =
  let s = Http.response_to_string (Http.response 404 "{\"error\":\"x\"}") in
  check bool' "status line" true
    (String.length s > 20 && String.sub s 0 22 = "HTTP/1.1 404 Not Found");
  check bool' "content-length" true
    (contains s "Content-Length: 13");
  check bool' "connection close" true (contains s "Connection: close")

(* --- metrics --------------------------------------------------------------- *)

let test_hist_quantiles () =
  let h = Metrics.Hist.create () in
  (* 1..100 ms, uniformly *)
  for i = 1 to 100 do
    Metrics.Hist.observe h (float_of_int i /. 1000.)
  done;
  check int' "count" 100 (Metrics.Hist.count h);
  check (Alcotest.float 1e-6) "p50 bucket" 50. (Metrics.Hist.quantile h 0.50);
  check (Alcotest.float 1e-6) "p95 bucket" 100. (Metrics.Hist.quantile h 0.95);
  check (Alcotest.float 1e-6) "p99 bucket" 100. (Metrics.Hist.quantile h 0.99);
  check (Alcotest.float 1e-6) "max" 100. (Metrics.Hist.max_ms h);
  check (Alcotest.float 1e-3) "sum" 5050. (Metrics.Hist.sum_ms h)

let test_hist_edges () =
  let h = Metrics.Hist.create () in
  check (Alcotest.float 0.) "empty quantile" 0. (Metrics.Hist.quantile h 0.99);
  Metrics.Hist.observe h 60.;  (* over the last bound: overflow bucket *)
  check (Alcotest.float 1e-6) "overflow reports observed max" 60000.
    (Metrics.Hist.quantile h 0.99);
  let h2 = Metrics.Hist.create () in
  Metrics.Hist.observe h2 0.00002;
  (* the bound of the first bucket is 0.05 ms, but a singleton histogram
     clamps the estimate to its observed maximum *)
  check (Alcotest.float 1e-6) "tiny latency clamps to observed max" 0.02
    (Metrics.Hist.quantile h2 0.5);
  check (Alcotest.float 1e-6) "q <= 0 estimates the smallest observation" 0.02
    (Metrics.Hist.quantile h2 0.)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.record m ~endpoint:"GET /health" ~status:200 ~seconds:0.001;
  Metrics.record m ~endpoint:"GET /health" ~status:500 ~seconds:0.002;
  Metrics.cache_hit m;
  Metrics.cache_miss m;
  Metrics.cache_hit m;
  check bool' "cache counts" true (Metrics.cache_counts m = (2, 1));
  let doc = Metrics.to_json m ~uptime_s:1. in
  check bool' "totals" true (Json.mem_int "requests_total" doc = Some 2);
  check bool' "errors" true (Json.mem_int "errors_total" doc = Some 1);
  let hits =
    Option.bind (Json.member "session_cache" doc) (Json.mem_int "hits")
  in
  check bool' "hits serialized" true (hits = Some 2)

(* --- typed chase errors ---------------------------------------------------- *)

let parse_exn src =
  match Ekg_datalog.Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse: %s" e

let test_chase_checked_unstratifiable () =
  let { Ekg_datalog.Parser.program; facts } =
    parse_exn {|
p(X), not q(X) -> q(X).
@goal(q).
p("a").
|}
  in
  match Ekg_engine.Chase.run_checked program facts with
  | Error (Ekg_engine.Chase.Unstratifiable _ as e) ->
    check bool' "client error" true (Ekg_engine.Chase.client_error e);
    check bool' "message preserved" true
      (Ekg_kernel.Textutil.contains_word
         (Ekg_engine.Chase.error_to_string e) "stratifiable")
  | Error _ -> Alcotest.fail "wrong error constructor"
  | Ok _ -> Alcotest.fail "unstratifiable program accepted"

let test_chase_checked_inconsistent () =
  let { Ekg_datalog.Parser.program; facts } =
    parse_exn {|
veto: bad(X) -> false.
mark: p(X) -> bad(X).
@goal(bad).
p("a").
|}
  in
  match Ekg_engine.Chase.run_checked program facts with
  | Error (Ekg_engine.Chase.Inconsistent _ as e) ->
    check bool' "client error" true (Ekg_engine.Chase.client_error e)
  | Error _ -> Alcotest.fail "wrong error constructor"
  | Ok _ -> Alcotest.fail "violated constraint accepted"

let test_chase_checked_divergent_is_server_side () =
  let err =
    Ekg_engine.Chase.Divergent { max_rounds = 7; stratum_rounds = [ 2; 5 ] }
  in
  check bool' "divergence is not a client error" false
    (Ekg_engine.Chase.client_error err);
  check bool' "message names the strata" true
    (contains (Ekg_engine.Chase.error_to_string err) "#2=5")

(* --- registry -------------------------------------------------------------- *)

let inline_program =
  {|
sigma1: own(X, Y, S), S > 0.5 -> control(X, Y).
sigma3: control(X, Z), own(Z, Y, S), TS = sum(S), TS > 0.5 -> control(X, Y).
@goal(control).
own("A", "B", 0.6).
own("B", "C", 0.7).
|}

let test_registry_cache_accounting () =
  let metrics = Metrics.create () in
  let reg = Registry.create metrics in
  let session =
    match Registry.add reg ~name:"inline" (Registry.Inline { program = inline_program; glossary = None }) with
    | Ok s -> s
    | Error e -> Alcotest.failf "add: %s" e
  in
  check string' "first id" "s1" session.Registry.id;
  (match Registry.materialize reg session with
  | Ok r -> check bool' "derived something" true (r.Ekg_engine.Chase.derived_count > 0)
  | Error _ -> Alcotest.fail "materialize failed");
  (match Registry.materialize reg session with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "second materialize failed");
  check bool' "one miss then one hit" true (Metrics.cache_counts metrics = (1, 1));
  check bool' "found by id" true (Registry.find reg "s1" <> None);
  check bool' "unknown id" true (Registry.find reg "s99" = None)

let test_registry_path_containment () =
  let reg = Registry.create (Metrics.create ()) in
  let escape p =
    match
      Registry.add reg (Registry.Files { program = p; glossary = None; facts_dir = None })
    with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "path %S escaped the root" p
  in
  escape "../../../etc/passwd";
  escape "/etc/passwd"

let test_registry_spec_decoding () =
  let decode s =
    match Json.parse s with
    | Ok j -> Registry.spec_of_json j
    | Error e -> Alcotest.failf "json: %s" e
  in
  (match decode {|{"app":"company-control","name":"cc"}|} with
  | Ok (Registry.App "company-control", Some "cc") -> ()
  | _ -> Alcotest.fail "app spec");
  (match decode {|{"program_path":"programs/x.vada","facts_dir":"data/x"}|} with
  | Ok (Registry.Files { program = "programs/x.vada"; facts_dir = Some "data/x"; _ }, None) -> ()
  | _ -> Alcotest.fail "files spec");
  (match decode {|{"program":"p(\"a\"). @goal(p)."}|} with
  | Ok (Registry.Inline _, None) -> ()
  | _ -> Alcotest.fail "inline spec");
  (match decode {|{}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty spec accepted");
  match decode {|{"app":"x","program":"y"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ambiguous spec accepted"

(* --- router (no sockets) --------------------------------------------------- *)

let request ?(body = "") ?(headers = []) ?(query = []) meth path =
  let target = "/" ^ String.concat "/" path in
  {
    Http.meth;
    target;
    path;
    query;
    headers = ("content-type", "application/json") :: headers;
    body;
  }

let test_router_statuses () =
  let st = Router.make_state () in
  let status r = r.Http.status in
  check int' "health" 200 (status (Router.handle st (request Http.GET [ "health" ])));
  check int' "unknown route" 404 (status (Router.handle st (request Http.GET [ "nope" ])));
  check int' "bad method" 405 (status (Router.handle st (request Http.DELETE [ "health" ])));
  check int' "unknown session" 404
    (status (Router.handle st (request ~body:{|{"query":"p("a")"}|} Http.POST [ "sessions"; "s9"; "explain" ])));
  check int' "bad session body" 400
    (status (Router.handle st (request ~body:"{oops" Http.POST [ "sessions" ])));
  let created =
    Router.handle st
      (request ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
         Http.POST [ "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  check int' "templates" 200
    (status (Router.handle st (request Http.GET [ "sessions"; "s1"; "templates" ])));
  check int' "malformed atom is 400"
    400
    (status
       (Router.handle st
          (request ~body:{|{"query":"control(\"A\" oops"}|} Http.POST
             [ "sessions"; "s1"; "explain" ])));
  check int' "valid explain" 200
    (status
       (Router.handle st
          (request ~body:{|{"query":"control(\"A\", \"C\")"}|} Http.POST
             [ "sessions"; "s1"; "explain" ])))

let test_router_observability () =
  let st = Router.make_state () in
  let header (r : Http.response) name = List.assoc_opt name r.Http.resp_headers in
  let r1 = Router.handle st (request Http.GET [ "health" ]) in
  let r2 = Router.handle st (request Http.GET [ "health" ]) in
  (match header r1 "X-Ekg-Trace-Id", header r2 "X-Ekg-Trace-Id" with
  | Some a, Some b ->
    check bool' "trace id assigned" true (String.length a > 0);
    check bool' "trace ids unique per request" true (a <> b)
  | _ -> Alcotest.fail "missing X-Ekg-Trace-Id header");
  let created =
    Router.handle st
      (request ~body:(Json.to_string (Json.Obj [ "program", Json.str inline_program ]))
         Http.POST [ "sessions" ])
  in
  check int' "created" 201 created.Http.status;
  check int' "no trace before the first explain" 404
    (Router.handle st (request Http.GET [ "sessions"; "s1"; "trace" ])).Http.status;
  check int' "bad method on trace is 405" 405
    (Router.handle st (request Http.POST [ "sessions"; "s1"; "trace" ])).Http.status;
  let explained =
    Router.handle st
      (request ~body:{|{"query":"control(\"A\", \"C\")"}|} Http.POST
         [ "sessions"; "s1"; "explain" ])
  in
  check int' "explain ok" 200 explained.Http.status;
  check bool' "explain body echoes the trace id" true
    (contains explained.Http.resp_body {|"trace_id"|});
  let trace = Router.handle st (request Http.GET [ "sessions"; "s1"; "trace" ]) in
  check int' "trace recorded after explain" 200 trace.Http.status;
  check bool' "root span is the request" true
    (contains trace.Http.resp_body {|"name":"explain-request"|});
  check bool' "chase child span" true
    (contains trace.Http.resp_body {|"name":"chase"|});
  check bool' "explain stage spans" true
    (contains trace.Http.resp_body {|"name":"proof-extraction"|});
  (* content negotiation on /metrics *)
  let json_doc = Router.handle st (request Http.GET [ "metrics" ]) in
  check bool' "default stays json" true
    (contains json_doc.Http.resp_body {|"requests_total"|});
  let prom =
    Router.handle st
      (request ~headers:[ "accept", "text/plain" ] Http.GET [ "metrics" ])
  in
  check string' "prometheus content type" "text/plain; version=0.0.4"
    prom.Http.content_type;
  check bool' "requests_total exposition" true
    (contains prom.Http.resp_body "# TYPE ekg_requests_total counter");
  check bool' "chase series present" true
    (contains prom.Http.resp_body "ekg_chase_rounds_total");
  check bool' "stage series fed by the tracer" true
    (contains prom.Http.resp_body {|ekg_pipeline_stage_seconds_total{stage="chase"}|});
  check bool' "endpoint histogram present" true
    (contains prom.Http.resp_body {|ekg_request_duration_ms_bucket{endpoint="GET /health",le="+Inf"}|});
  let prom2 =
    Router.handle st
      (request ~query:[ "format", "prometheus" ] Http.GET [ "metrics" ])
  in
  check bool' "?format=prometheus negotiates too" true
    (contains prom2.Http.resp_body "# HELP ekg_uptime_seconds")

(* --- loopback integration -------------------------------------------------- *)

let http_call ~port ~meth ~path ~body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let payload =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\r\n%s"
          meth path (String.length body) body
      in
      let _ = Unix.write_substring fd payload 0 (String.length payload) in
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      let status = int_of_string (String.sub raw 9 3) in
      let body =
        match Ekg_kernel.Textutil.split_on_string ~sep:"\r\n\r\n" raw with
        | _ :: rest -> String.concat "\r\n\r\n" rest
        | [] -> ""
      in
      status, body)

let test_server_integration () =
  let st = Router.make_state ~root:".." () in
  let config = { Server.default_config with port = 0; domains = 2 } in
  let server = Server.start ~config st in
  let port = Server.port server in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let status, body = http_call ~port ~meth:"GET" ~path:"/health" ~body:"" in
  check int' "health status" 200 status;
  check bool' "health body" true (contains body {|"status":"ok"|});
  (* session loaded from the repo's programs/ directory *)
  let status, body =
    http_call ~port ~meth:"POST" ~path:"/sessions"
      ~body:
        {|{"name":"cc","program_path":"programs/company_control.vada","glossary_path":"programs/company_control.dict","facts_dir":"data/company_control"}|}
  in
  check int' "session created" 201 status;
  check bool' "session id" true (contains body {|"id":"s1"|});
  let explain () =
    http_call ~port ~meth:"POST" ~path:"/sessions/s1/explain"
      ~body:{|{"query":"control(\"A\", \"D\")"}|}
  in
  let status, body = explain () in
  check int' "explain status" 200 status;
  check bool' "explanation text present" true
    (contains body "exercises control over");
  (* the second identical request must be a registry cache hit *)
  let status, _ = explain () in
  check int' "second explain status" 200 status;
  let status, body =
    http_call ~port ~meth:"POST" ~path:"/sessions/s1/explain"
      ~body:{|{"query":"control(\"A\" broken"}|}
  in
  check int' "malformed query is 400, worker survives" 400 status;
  check bool' "error is json" true (contains body {|"error"|});
  let status, body = http_call ~port ~meth:"GET" ~path:"/metrics" ~body:"" in
  check int' "metrics status" 200 status;
  check bool' "one cache hit recorded" true
    (contains body {|"hits":1|});
  check bool' "one cache miss recorded" true
    (contains body {|"misses":1|});
  let status, body =
    http_call ~port ~meth:"GET" ~path:"/sessions/s1/trace" ~body:""
  in
  check int' "trace endpoint" 200 status;
  check bool' "trace names the request span" true
    (contains body {|"name":"explain-request"|});
  let status, body =
    http_call ~port ~meth:"GET" ~path:"/metrics?format=prometheus" ~body:""
  in
  check int' "prometheus scrape status" 200 status;
  check bool' "prometheus exposition" true
    (contains body "# TYPE ekg_requests_total counter");
  check bool' "chase series after explain" true
    (contains body "ekg_chase_rounds_total");
  check bool' "stage series after explain" true
    (contains body "ekg_pipeline_stage_seconds_total")

(* --------------------------------------------------------------------------- *)

let () =
  Alcotest.run "ekg_server"
    [
      ( "json",
        [
          Alcotest.test_case "printing" `Quick test_json_print;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "http",
        [
          Alcotest.test_case "happy path" `Quick test_http_happy_path;
          Alcotest.test_case "GET without length" `Quick test_http_get_without_length;
          Alcotest.test_case "missing content-length" `Quick test_http_missing_content_length;
          Alcotest.test_case "oversized body" `Quick test_http_oversized_body;
          Alcotest.test_case "bad requests" `Quick test_http_bad_requests;
          Alcotest.test_case "header limit" `Quick test_http_header_limit;
          Alcotest.test_case "response serialization" `Quick test_http_response_serialization;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "histogram edges" `Quick test_hist_edges;
          Alcotest.test_case "counters + json" `Quick test_metrics_counters;
        ] );
      ( "chase errors",
        [
          Alcotest.test_case "unstratifiable" `Quick test_chase_checked_unstratifiable;
          Alcotest.test_case "inconsistent" `Quick test_chase_checked_inconsistent;
          Alcotest.test_case "divergent classification" `Quick
            test_chase_checked_divergent_is_server_side;
        ] );
      ( "registry",
        [
          Alcotest.test_case "cache accounting" `Quick test_registry_cache_accounting;
          Alcotest.test_case "path containment" `Quick test_registry_path_containment;
          Alcotest.test_case "spec decoding" `Quick test_registry_spec_decoding;
        ] );
      ( "router",
        [
          Alcotest.test_case "status mapping" `Quick test_router_statuses;
          Alcotest.test_case "observability" `Quick test_router_observability;
        ] );
      ( "integration",
        [ Alcotest.test_case "loopback server" `Quick test_server_integration ] );
    ]
