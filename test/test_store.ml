(* Tests for the persistent session store: wire primitives, the
   versioned snapshot codec (round-trips on every bundled app,
   fingerprint identity, typed corruption/truncation/version errors),
   the atomic on-disk store, and the write-behind snapshotter. *)

open Ekg_datalog
open Ekg_engine
open Ekg_store

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int
let string' = Alcotest.string

let contains haystack needle =
  List.length (Ekg_kernel.Textutil.split_on_string ~sep:needle haystack) > 1

(* --- fixtures --------------------------------------------------------------- *)

let chase_exn program edb =
  match Chase.run program edb with
  | Ok r -> r
  | Error e -> Alcotest.failf "chase: %s" e

let bundled_apps = Ekg_apps.Bundled.names

let load_app_exn app =
  match Ekg_apps.Bundled.load app with
  | Ok l -> l
  | Error e -> Alcotest.failf "load %s: %s" app e

(* a full snapshot (materialization included) of one bundled app *)
let snapshot_of_app ?(id = "s1") app =
  let { Ekg_apps.Apps_util.pipeline; edb } = load_app_exn app in
  let mat = chase_exn pipeline.Ekg_core.Pipeline.program edb in
  {
    Codec.id;
    name = app;
    spec = Codec.App app;
    program_hash = Ekg_core.Pipeline.identity pipeline;
    update_gen = 3;
    created_at = 1.75e9;
    edb;
    mat = Some mat;
  }

let mat_exn (snap : Codec.t) =
  match snap.Codec.mat with
  | Some m -> m
  | None -> Alcotest.fail "snapshot lost its materialization"

let db_fp (r : Chase.result) = Database.fingerprint r.Chase.db

let prov_bytes (r : Chase.result) =
  let b = Buffer.create 256 in
  Provenance.encode b r.Chase.prov;
  Buffer.contents b

(* --- wire primitives -------------------------------------------------------- *)

let test_wire_int_roundtrip () =
  let cases =
    [ 0; 1; -1; 63; 64; -64; -65; 127; 128; 300; -300; 1 lsl 30; max_int; min_int ]
  in
  let b = Buffer.create 64 in
  List.iter (Wire.w_int b) cases;
  let r = Wire.reader (Buffer.contents b) in
  List.iter (fun n -> check int' (string_of_int n) n (Wire.r_int r)) cases;
  check int' "fully consumed" 0 (Wire.remaining r)

let test_wire_mixed_roundtrip () =
  let b = Buffer.create 64 in
  Wire.w_string b "héllo\x00world";
  Wire.w_float b (-0.125);
  Wire.w_bool b true;
  Wire.w_value b (Ekg_kernel.Value.str "x");
  Wire.w_value b (Ekg_kernel.Value.num 2.5);
  Wire.w_value b (Ekg_kernel.Value.Null 7);
  Wire.w_int_list b [ 3; -1; 4 ];
  let r = Wire.reader (Buffer.contents b) in
  check string' "string" "héllo\x00world" (Wire.r_string r);
  check bool' "float" true (Wire.r_float r = -0.125);
  check bool' "bool" true (Wire.r_bool r);
  check bool' "str value" true (Wire.r_value r = Ekg_kernel.Value.str "x");
  check bool' "num value" true (Wire.r_value r = Ekg_kernel.Value.num 2.5);
  check bool' "null value" true (Wire.r_value r = Ekg_kernel.Value.Null 7);
  check bool' "int list" true (Wire.r_int_list r = [ 3; -1; 4 ])

let test_wire_strictness () =
  (match Wire.r_string (Wire.reader "\x08ab") with
  | exception Wire.Truncated -> ()
  | _ -> Alcotest.fail "short string should raise Truncated");
  (match Wire.r_bool (Wire.reader "\x05") with
  | exception Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "bool tag 5 should raise Corrupt");
  match Wire.r_value (Wire.reader "\x09") with
  | exception Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "value tag 9 should raise Corrupt"

(* --- codec round-trips ------------------------------------------------------ *)

let test_codec_roundtrip_bundled () =
  List.iter
    (fun app ->
      let snap = snapshot_of_app app in
      let bytes = Codec.encode snap in
      match Codec.decode bytes with
      | Error e -> Alcotest.failf "%s: decode: %s" app (Codec.error_to_string e)
      | Ok snap' ->
        check string' (app ^ " id") snap.Codec.id snap'.Codec.id;
        check string' (app ^ " name") snap.Codec.name snap'.Codec.name;
        check bool' (app ^ " spec") true (snap.Codec.spec = snap'.Codec.spec);
        check string' (app ^ " program hash") snap.Codec.program_hash
          snap'.Codec.program_hash;
        check int' (app ^ " update_gen") snap.Codec.update_gen
          snap'.Codec.update_gen;
        check bool' (app ^ " edb") true (snap.Codec.edb = snap'.Codec.edb);
        let m = mat_exn snap and m' = mat_exn snap' in
        check string' (app ^ " db fingerprint") (db_fp m) (db_fp m');
        check string' (app ^ " provenance bytes") (prov_bytes m) (prov_bytes m');
        check int' (app ^ " rounds") m.Chase.rounds m'.Chase.rounds;
        check int' (app ^ " derived") m.Chase.derived_count
          m'.Chase.derived_count;
        (* deterministic: re-encoding the decoded snapshot reproduces
           the original bytes exactly *)
        check bool' (app ^ " byte-stable") true
          (String.equal bytes (Codec.encode snap')))
    bundled_apps

let test_codec_dormant_roundtrip () =
  let snap = { (snapshot_of_app "company-control") with Codec.mat = None } in
  match Codec.decode (Codec.encode snap) with
  | Error e -> Alcotest.failf "decode: %s" (Codec.error_to_string e)
  | Ok snap' ->
    check bool' "still dormant" true (snap'.Codec.mat = None);
    check bool' "edb kept" true (snap.Codec.edb = snap'.Codec.edb)

let test_codec_decode_meta () =
  let snap = snapshot_of_app "company-control" in
  match Codec.decode_meta (Codec.encode snap) with
  | Error e -> Alcotest.failf "decode_meta: %s" (Codec.error_to_string e)
  | Ok m ->
    check string' "id" snap.Codec.id m.Codec.id;
    check int' "update_gen" snap.Codec.update_gen m.Codec.update_gen;
    check bool' "edb" true (snap.Codec.edb = m.Codec.edb);
    check bool' "meta read skips the materialization" true (m.Codec.mat = None)

(* --- typed failure modes ---------------------------------------------------- *)

let encoded_fixture = lazy (Codec.encode (snapshot_of_app "company-control"))

let set_byte s i c =
  let b = Bytes.of_string s in
  Bytes.set b i c;
  Bytes.to_string b

let test_codec_bad_magic () =
  let bytes = set_byte (Lazy.force encoded_fixture) 0 'X' in
  (match Codec.decode bytes with
  | Error Codec.Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic");
  match Codec.decode_meta bytes with
  | Error Codec.Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic from decode_meta"

let test_codec_version_mismatch () =
  (* the version varint sits right after the 8-byte magic;
     zigzag(2) = 4 forges a future format version *)
  let bytes = set_byte (Lazy.force encoded_fixture) 8 '\x04' in
  match Codec.decode bytes with
  | Error (Codec.Version_mismatch { found = 2; expected }) ->
    check int' "expected is current" Codec.format_version expected
  | _ -> Alcotest.fail "expected Version_mismatch"

let test_codec_truncation () =
  let bytes = Lazy.force encoded_fixture in
  let n = String.length bytes in
  (* every proper prefix must fail with a typed error, never an
     exception and never a bogus Ok *)
  for len = 0 to n - 1 do
    if len mod 7 = 0 || len > n - 20 then
      match Codec.decode (String.sub bytes 0 len) with
      | Ok _ -> Alcotest.failf "prefix of %d/%d bytes decoded" len n
      | Error (Codec.Truncated | Codec.Bad_magic | Codec.Corrupt _) -> ()
      | Error e ->
        Alcotest.failf "prefix of %d bytes: unexpected %s" len
          (Codec.error_to_string e)
  done

let test_codec_fingerprint_guard () =
  (* decode checks the restored database against the recorded digest —
     build a snapshot whose recorded fingerprint lies by encoding a
     different materialization under the same meta *)
  let a = snapshot_of_app "company-control" in
  let b = snapshot_of_app "stress-test" in
  let bytes_a = Codec.encode a in
  let bytes_b = Codec.encode { b with Codec.id = a.Codec.id } in
  (* splice: header+meta of [a], materialization section of [b].  The
     meta section ends where [a]'s mat-presence flag begins; find the
     sections by re-reading the container structure *)
  let sections bytes =
    let r = Wire.reader bytes in
    ignore (Wire.expect_magic r "EKGSNAP0");
    ignore (Wire.r_int r);
    let len = Wire.r_int r in
    Wire.skip r (len + 8);
    (* meta payload + checksum *)
    let meta_end = Wire.pos r in
    (String.sub bytes 0 meta_end, String.sub bytes meta_end (String.length bytes - meta_end))
  in
  let head_a, _ = sections bytes_a in
  let _, mat_b = sections bytes_b in
  match Codec.decode (head_a ^ mat_b) with
  | Error (Codec.Fingerprint_mismatch _) -> ()
  | Error (Codec.Corrupt _) ->
    (* also acceptable: the replay itself can detect the splice *)
    ()
  | Ok _ -> Alcotest.fail "spliced snapshot decoded"
  | Error e -> Alcotest.failf "unexpected %s" (Codec.error_to_string e)

(* every single-byte mutation is detected: magic/version/flag bytes by
   their own validation, section payloads by the FNV checksum *)
let corruption_prop =
  QCheck2.Test.make ~name:"single-byte corruption always yields a typed error"
    ~count:300
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 255))
    (fun (pos_seed, delta) ->
      let bytes = Lazy.force encoded_fixture in
      let i = pos_seed mod String.length bytes in
      let corrupted =
        set_byte bytes i (Char.chr ((Char.code bytes.[i] + delta) land 0xff))
      in
      match Codec.decode corrupted with
      | Error _ -> true
      | Ok snap ->
        (* flips inside value payloads of the mat section can survive
           checksummed-but-semantically-equal only if they decode to
           the same instance; require fingerprint identity then *)
        String.equal
          (db_fp (mat_exn snap))
          (db_fp (mat_exn (snapshot_of_app "company-control"))))

(* random reasoning tasks round-trip fingerprint-identically *)
let roundtrip_prop =
  let edges_gen =
    QCheck2.Gen.(list_size (int_range 0 15) (pair (int_range 0 5) (int_range 0 5)))
  in
  QCheck2.Test.make ~name:"decode (encode result) is fingerprint-identical"
    ~count:60 edges_gen (fun raw ->
      let edb =
        List.map
          (fun (a, b) ->
            Atom.make "e"
              [ Term.str (Printf.sprintf "n%d" a); Term.str (Printf.sprintf "n%d" b) ])
          raw
      in
      let program =
        Ekg_apps.Apps_util.parse_program_exn
          {|
e(X, Y) -> path(X, Y).
path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}
      in
      let mat = chase_exn program edb in
      let snap =
        {
          Codec.id = "p1";
          name = "prop";
          spec = Codec.Inline { program = "…"; glossary = None };
          program_hash = "h";
          update_gen = 0;
          created_at = 0.;
          edb;
          mat = Some mat;
        }
      in
      match Codec.decode (Codec.encode snap) with
      | Error _ -> false
      | Ok snap' ->
        String.equal (db_fp mat) (db_fp (mat_exn snap'))
        && String.equal (prov_bytes mat) (prov_bytes (mat_exn snap')))

(* --- the on-disk store ------------------------------------------------------ *)

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ekg_store_test_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let open_exn dir =
  match Store.open_dir dir with
  | Ok s -> s
  | Error e -> Alcotest.failf "open_dir: %s" e

let test_store_save_load () =
  with_tmp_dir @@ fun dir ->
  let store = open_exn dir in
  let snap = snapshot_of_app "company-control" in
  (match Store.save store snap with
  | Error e -> Alcotest.failf "save: %s" e
  | Ok bytes -> check bool' "non-trivial size" true (bytes > 100));
  (match Store.load store "s1" with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok snap' ->
    check string' "fingerprint survives the disk trip"
      (db_fp (mat_exn snap))
      (db_fp (mat_exn snap')));
  (match Store.load_meta store "s1" with
  | Error e -> Alcotest.failf "load_meta: %s" e
  | Ok m -> check bool' "meta load is dormant" true (m.Codec.mat = None));
  check bool' "scan finds it" true (Store.scan store = [ "s1" ]);
  Store.delete store "s1";
  check bool' "deleted" true (Store.scan store = []);
  match Store.load store "s1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load after delete"

let test_store_rejects_bad_ids () =
  with_tmp_dir @@ fun dir ->
  let store = open_exn dir in
  let snap id = { (snapshot_of_app "company-control") with Codec.id = id } in
  List.iter
    (fun id ->
      match Store.save store (snap id) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "id %S accepted" id)
    [ ""; "../escape"; "a/b"; ".hidden" ]

let test_store_scan_order_and_sweep () =
  with_tmp_dir @@ fun dir ->
  let store = open_exn dir in
  List.iter
    (fun id ->
      match Store.save store { (snapshot_of_app "company-control") with Codec.id = id } with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "save %s: %s" id e)
    [ "s10"; "s2"; "s1" ];
  check bool' "numeric-friendly order" true (Store.scan store = [ "s1"; "s2"; "s10" ]);
  (* a torn tmp file from a crashed writer is ignored and swept *)
  let torn = Filename.concat dir "s9.snap.1234.tmp" in
  let oc = open_out torn in
  output_string oc "partial";
  close_out oc;
  check bool' "tmp not scanned" true (Store.scan store = [ "s1"; "s2"; "s10" ]);
  let store2 = open_exn dir in
  check bool' "sweep removed the tmp" false (Sys.file_exists torn);
  check bool' "snapshots survive reopen" true
    (Store.scan store2 = [ "s1"; "s2"; "s10" ])

let test_store_corrupt_file_is_typed () =
  with_tmp_dir @@ fun dir ->
  let store = open_exn dir in
  let snap = snapshot_of_app "company-control" in
  (match Store.save store snap with Ok _ -> () | Error e -> Alcotest.failf "save: %s" e);
  (* truncate the file in place, as an interrupted copy would *)
  let path = Store.path store "s1" in
  let data = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub data 0 (String.length data / 2)));
  match Store.load store "s1" with
  | Error e -> check bool' "mentions truncation or corruption" true
      (let l = String.lowercase_ascii e in
       (* the cut can land mid-field (truncated) or mid-section (checksum) *)
       contains l "truncat" || contains l "corrupt")
  | Ok _ -> Alcotest.fail "truncated snapshot loaded"

(* --- snapshotter ------------------------------------------------------------ *)

let test_snapshotter_sync () =
  with_tmp_dir @@ fun dir ->
  let store = open_exn dir in
  let sn = Snapshotter.create ~mode:Snapshotter.Sync store in
  Snapshotter.request sn ~sid:"s1" (fun () -> Some (snapshot_of_app "company-control"));
  check bool' "saved inline" true (Store.scan store = [ "s1" ]);
  Snapshotter.request sn ~sid:"s2" (fun () -> None);
  check bool' "None capture skips the save" true (Store.scan store = [ "s1" ]);
  Snapshotter.stop sn

let test_snapshotter_write_behind_coalesces () =
  with_tmp_dir @@ fun dir ->
  let store = open_exn dir in
  let sn = Snapshotter.create ~mode:Snapshotter.Write_behind store in
  let captures = Atomic.make 0 in
  let gate = Mutex.create () in
  (* hold the first capture at the gate so later requests pile up and
     coalesce behind it *)
  Mutex.lock gate;
  Snapshotter.request sn ~sid:"s1" (fun () ->
      Mutex.lock gate;
      Mutex.unlock gate;
      Atomic.incr captures;
      Some { (snapshot_of_app "company-control") with Codec.update_gen = 0 });
  for gen = 1 to 5 do
    Snapshotter.request sn ~sid:"s2" (fun () ->
        Atomic.incr captures;
        Some { (snapshot_of_app ~id:"s2" "company-control") with Codec.update_gen = gen })
  done;
  Mutex.unlock gate;
  Snapshotter.flush sn;
  (* s1 ran (it may have started before the pile-up), and the five s2
     requests collapsed into at most... the one that was pending when
     the worker got to s2 — i.e. exactly one capture for s2 *)
  check int' "burst coalesced" 2 (Atomic.get captures);
  (match Store.load_meta store "s2" with
  | Ok m -> check int' "last capture won" 5 m.Codec.update_gen
  | Error e -> Alcotest.failf "s2: %s" e);
  Snapshotter.stop sn;
  Snapshotter.stop sn (* idempotent *)

let test_snapshotter_discard () =
  with_tmp_dir @@ fun dir ->
  let store = open_exn dir in
  let sn = Snapshotter.create ~mode:Snapshotter.Off store in
  Snapshotter.request sn ~sid:"s1" (fun () -> Some (snapshot_of_app "company-control"));
  check bool' "off drops requests" true (Store.scan store = []);
  Snapshotter.discard sn ~sid:"s1";
  Snapshotter.stop sn

(* --- main ------------------------------------------------------------------- *)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ roundtrip_prop; corruption_prop ]

let () =
  Alcotest.run "ekg_store"
    [
      ( "wire",
        [
          Alcotest.test_case "int round-trip" `Quick test_wire_int_roundtrip;
          Alcotest.test_case "mixed round-trip" `Quick test_wire_mixed_roundtrip;
          Alcotest.test_case "strict decoding" `Quick test_wire_strictness;
        ] );
      ( "codec",
        [
          Alcotest.test_case "bundled apps round-trip" `Quick
            test_codec_roundtrip_bundled;
          Alcotest.test_case "dormant round-trip" `Quick test_codec_dormant_roundtrip;
          Alcotest.test_case "meta-only read" `Quick test_codec_decode_meta;
          Alcotest.test_case "bad magic" `Quick test_codec_bad_magic;
          Alcotest.test_case "version mismatch" `Quick test_codec_version_mismatch;
          Alcotest.test_case "truncation" `Quick test_codec_truncation;
          Alcotest.test_case "fingerprint guard" `Quick test_codec_fingerprint_guard;
        ] );
      ( "store",
        [
          Alcotest.test_case "save/load/scan/delete" `Quick test_store_save_load;
          Alcotest.test_case "id validation" `Quick test_store_rejects_bad_ids;
          Alcotest.test_case "scan order + tmp sweep" `Quick
            test_store_scan_order_and_sweep;
          Alcotest.test_case "corrupt file is a typed error" `Quick
            test_store_corrupt_file_is_typed;
        ] );
      ( "snapshotter",
        [
          Alcotest.test_case "sync mode" `Quick test_snapshotter_sync;
          Alcotest.test_case "write-behind coalescing" `Quick
            test_snapshotter_write_behind_coalesces;
          Alcotest.test_case "off + discard" `Quick test_snapshotter_discard;
        ] );
      ("properties", qsuite);
    ]
